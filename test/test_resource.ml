(* The resource governor: budget unit tests, deterministic fault
   injection at every pipeline boundary, and a randomized differential
   fuzzer checking the anytime contract — budget pressure may turn
   SAT/UNSAT into UNKNOWN but must never flip an answer, and no
   exception may escape a public entry point. *)

module A = Absolver_core
module B = Absolver_baselines
module Budget = Absolver_resource.Budget
module Err = Absolver_resource.Absolver_error
module Faults = Absolver_resource.Faults
module AS = Absolver_sat.All_sat
module E = Absolver_nlp.Expr
module L = Absolver_lp.Linexpr
module T = Absolver_sat.Types
module Q = Absolver_numeric.Rational
module Telemetry = Absolver_telemetry.Telemetry

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Budget unit tests.                                                  *)

let test_unlimited_is_free () =
  let b = Budget.unlimited in
  check bool_t "unlimited" true (Budget.is_unlimited b);
  for _ = 1 to 10_000 do
    Budget.tick b
  done;
  Budget.charge b 1_000_000;
  Budget.cancel b;
  check bool_t "never trips" true (Budget.check b = None);
  check bool_t "no reason" true (Budget.tripped b = None);
  check int_t "no steps counted" 0 (Budget.steps b);
  check bool_t "no deadline" true (Budget.remaining_seconds b = None)

let test_step_budget () =
  let b = Budget.create ~max_steps:5 () in
  for _ = 1 to 5 do
    Budget.tick b
  done;
  check bool_t "within budget" true (Budget.tripped b = None);
  (match Budget.tick b with
  | () -> Alcotest.fail "tick 6 should raise"
  | exception Budget.Exhausted (Err.Out_of_budget Err.Steps) -> ()
  | exception _ -> Alcotest.fail "wrong exception");
  check bool_t "sticky" true
    (Budget.tripped b = Some (Err.Out_of_budget Err.Steps));
  (* Once tripped, every tick keeps raising. *)
  (match Budget.tick b with
  | () -> Alcotest.fail "tick after trip should raise"
  | exception Budget.Exhausted _ -> ());
  check int_t "steps counted" 7 (Budget.steps b)

let test_deadline () =
  let b = Budget.create ~deadline_seconds:0.005 () in
  check bool_t "has remaining" true (Budget.remaining_seconds b <> None);
  Unix.sleepf 0.02;
  check bool_t "deadline trips" true (Budget.check b = Some Err.Timeout);
  check bool_t "sticky" true (Budget.tripped b = Some Err.Timeout);
  (match Budget.check_exn b with
  | () -> Alcotest.fail "check_exn should raise after the deadline"
  | exception Budget.Exhausted Err.Timeout -> ())

let test_memory_budget () =
  let b = Budget.create ~max_words:1_000 () in
  match Budget.charge b 1_000_000 with
  | () -> Alcotest.fail "charge should raise"
  | exception Budget.Exhausted (Err.Out_of_budget Err.Memory) ->
    check bool_t "sticky" true
      (Budget.tripped b = Some (Err.Out_of_budget Err.Memory))

let test_cancellation () =
  let b = Budget.create () in
  check bool_t "initially fine" true (Budget.check b = None);
  Budget.cancel b;
  check bool_t "cancelled" true (Budget.check b = Some Err.Cancelled);
  check bool_t "sticky" true (Budget.tripped b = Some Err.Cancelled)

let test_first_trip_wins () =
  let b = Budget.create () in
  Budget.trip b Err.Timeout;
  Budget.trip b Err.Cancelled;
  check bool_t "first reason kept" true (Budget.tripped b = Some Err.Timeout)

let test_guard () =
  let b = Budget.create () in
  check bool_t "passes values" true (Budget.guard b (fun () -> 42) = Ok 42);
  check bool_t "converts Exhausted" true
    (Budget.guard b (fun () -> raise (Budget.Exhausted Err.Timeout))
    = Error Err.Timeout);
  let b2 = Budget.create () in
  (match Budget.guard b2 (fun () -> failwith "boom") with
  | Error (Err.Internal _) -> ()
  | _ -> Alcotest.fail "stray exception should become Internal");
  (match Budget.tripped b2 with
  | Some (Err.Internal _) -> ()
  | _ -> Alcotest.fail "stray exception should trip the budget")

let test_error_rendering () =
  check Alcotest.string "timeout" "timeout" (Err.to_string Err.Timeout);
  List.iter
    (fun e ->
      check bool_t "code is one token" true
        (not (String.contains (Err.code e) ' ')))
    [
      Err.Timeout;
      Err.Cancelled;
      Err.Out_of_budget Err.Steps;
      Err.Out_of_budget Err.Memory;
      Err.Internal "x";
    ]

(* ------------------------------------------------------------------ *)
(* Problems for the fuzzer and the fault harness.                      *)

let random_linear_problem st =
  let nvars_arith = 2 + Random.State.int st 3 in
  let n_defs = 2 + Random.State.int st 5 in
  let p = A.Ab_problem.create () in
  let vars =
    List.init nvars_arith (fun i ->
        A.Ab_problem.intern_arith_var p (Printf.sprintf "v%d" i))
  in
  List.iter
    (fun v ->
      A.Ab_problem.set_bounds p v ~lower:(Q.of_int (-10)) ~upper:(Q.of_int 10)
        ())
    vars;
  for b = 0 to n_defs - 1 do
    let nterms = 1 + Random.State.int st 2 in
    let terms =
      List.init nterms (fun _ ->
          E.mul
            (E.const (Q.of_int (1 + Random.State.int st 3)))
            (E.var (Random.State.int st nvars_arith)))
    in
    let expr =
      E.sub (E.sum terms) (E.const (Q.of_int (Random.State.int st 9 - 4)))
    in
    let op = if Random.State.bool st then L.Le else L.Ge in
    A.Ab_problem.define p ~bool_var:b ~domain:A.Ab_problem.Dreal
      { E.expr; op; tag = b }
  done;
  let n_clauses = 1 + Random.State.int st 4 in
  for _ = 1 to n_clauses do
    let len = 1 + Random.State.int st 3 in
    let clause =
      List.init len (fun _ ->
          let v = Random.State.int st n_defs in
          if Random.State.bool st then T.pos v else T.neg_of_var v)
    in
    A.Ab_problem.add_clause p clause
  done;
  p

(* A mixed linear + nonlinear problem that reaches every in-engine fault
   point: presolve (CNF, LP rows and interval contraction all have work),
   the SAT search, the per-model linear check (simplex with an integer
   variable) and the nonlinear branch-and-prune. *)
let mixed_problem () =
  let text =
    "p cnf 2 2\n1 0\n2 0\nc def int 1 n >= 4\nc def real 2 x * x <= 2\n\
     c bound n 0 10\nc bound x 0.5 10\n"
  in
  match A.Dimacs_ext.parse_string text with
  | Ok p -> p
  | Error e -> Alcotest.fail e

(* A budget with the given random tight limit; index 3 is a
   pre-cancelled budget, exercising the cooperative-cancellation path. *)
let tight_budget st =
  match Random.State.int st 4 with
  | 0 -> Budget.create ~max_steps:(1 + Random.State.int st 400) ()
  | 1 -> Budget.create ~deadline_seconds:0.0 ()
  | 2 -> Budget.create ~max_words:(1_000 + Random.State.int st 100_000) ()
  | _ ->
    let b = Budget.create () in
    Budget.cancel b;
    b

let verdict_tag = function
  | A.Engine.R_sat _ -> `Sat
  | A.Engine.R_unsat -> `Unsat
  | A.Engine.R_unknown _ -> `Unknown

let no_flip ~case ~what reference degraded =
  match (reference, degraded) with
  | `Sat, `Unsat | `Unsat, `Sat ->
    Alcotest.failf "case %d: %s flipped the answer under budget pressure"
      case what
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Differential fuzzing: engine and DPLL(T) baseline under tight
   budgets vs the unbudgeted engine.                                   *)

let fuzz_cases = 500

let test_fuzz_never_flips () =
  let st = Random.State.make [| 0xB0D6E7 |] in
  for case = 1 to fuzz_cases do
    let p = random_linear_problem st in
    let reference =
      match fst (A.Engine.solve p) with
      | A.Engine.R_sat sol ->
        (match A.Solution.check p sol with
        | Ok () -> `Sat
        | Error e -> Alcotest.failf "case %d: unbudgeted model broken: %s" case e)
      | A.Engine.R_unsat -> `Unsat
      | A.Engine.R_unknown _ -> `Unknown
    in
    (* Engine under a tight budget. *)
    let options =
      { A.Engine.default_options with A.Engine.budget = tight_budget st }
    in
    (match A.Engine.solve ~options p with
    | result, stats ->
      (match result with
      | A.Engine.R_sat sol ->
        (match A.Solution.check p sol with
        | Ok () -> ()
        | Error e -> Alcotest.failf "case %d: budgeted model broken: %s" case e)
      | A.Engine.R_unknown _ ->
        (* An unknown under pressure must be attributable: either the
           budget tripped or the engine was already incomplete. *)
        ignore stats.A.Engine.budget_exhausted
      | A.Engine.R_unsat -> ());
      no_flip ~case ~what:"engine" reference (verdict_tag result)
    | exception e ->
      Alcotest.failf "case %d: engine escaped exception %s" case
        (Printexc.to_string e));
    (* DPLL(T) baseline under a tight budget. *)
    (match B.Mathsat_like.solve ~budget:(tight_budget st) p with
    | B.Common.B_sat sol ->
      (match A.Solution.check p sol with
      | Ok () -> ()
      | Error e -> Alcotest.failf "case %d: baseline model broken: %s" case e);
      no_flip ~case ~what:"baseline" reference `Sat
    | B.Common.B_unsat -> no_flip ~case ~what:"baseline" reference `Unsat
    | B.Common.B_unknown _ | B.Common.B_out_of_memory -> ()
    | B.Common.B_rejected why ->
      Alcotest.failf "case %d: baseline rejected a linear problem: %s" case why
    | exception e ->
      Alcotest.failf "case %d: baseline escaped exception %s" case
        (Printexc.to_string e))
  done

let test_fuzz_nonlinear_degrades () =
  (* The mixed problem under random tight budgets: any verdict but a
     flip (its unbudgeted verdict is sat), and never an exception. *)
  let st = Random.State.make [| 4242 |] in
  let p = mixed_problem () in
  (match fst (A.Engine.solve p) with
  | A.Engine.R_sat _ -> ()
  | _ -> Alcotest.fail "mixed problem should be sat unbudgeted");
  for case = 1 to 50 do
    let options =
      { A.Engine.default_options with A.Engine.budget = tight_budget st }
    in
    match A.Engine.solve ~options p with
    | A.Engine.R_unsat, _ ->
      Alcotest.failf "case %d: budget flipped sat to unsat" case
    | (A.Engine.R_sat _ | A.Engine.R_unknown _), _ -> ()
    | exception e ->
      Alcotest.failf "case %d: escaped exception %s" case (Printexc.to_string e)
  done

let test_fuzz_all_models_anytime () =
  let st = Random.State.make [| 99 |] in
  for case = 1 to 100 do
    let p = random_linear_problem st in
    let complete =
      match A.Engine.all_models ~limit:50 p with
      | Ok (models, _) -> Some (List.length models)
      | Error _ -> None
    in
    let options =
      {
        A.Engine.default_options with
        A.Engine.budget = Budget.create ~max_steps:(1 + Random.State.int st 300) ();
      }
    in
    match A.Engine.all_models ~options ~limit:50 p with
    | Ok (models, stats) ->
      List.iter
        (fun sol ->
          match A.Solution.check p sol with
          | Ok () -> ()
          | Error e -> Alcotest.failf "case %d: partial model broken: %s" case e)
        models;
      (match (complete, stats.A.Engine.budget_exhausted) with
      | Some n, None ->
        check int_t "uninterrupted enumeration is complete" n
          (List.length models)
      | Some n, Some _ ->
        check bool_t "partial enumeration never over-reports" true
          (List.length models <= n)
      | None, _ -> ())
    | Error _ -> ()
    | exception e ->
      Alcotest.failf "case %d: all_models escaped exception %s" case
        (Printexc.to_string e)
  done

let test_generous_budget_bit_identical () =
  (* A budget that never trips must not change any decision. *)
  let st = Random.State.make [| 7 |] in
  for _ = 1 to 40 do
    let p = random_linear_problem st in
    let r0, s0 = A.Engine.solve p in
    let options =
      {
        A.Engine.default_options with
        A.Engine.budget =
          Budget.create ~deadline_seconds:3600.0 ~max_steps:max_int ();
      }
    in
    let r1, s1 = A.Engine.solve ~options p in
    check bool_t "same verdict" true (verdict_tag r0 = verdict_tag r1);
    check int_t "same bool models" s0.A.Engine.bool_models
      s1.A.Engine.bool_models;
    check int_t "same linear checks" s0.A.Engine.linear_checks
      s1.A.Engine.linear_checks;
    check bool_t "no trip recorded" true (s1.A.Engine.budget_exhausted = None)
  done

(* ------------------------------------------------------------------ *)
(* Deterministic fault injection.                                      *)

let engine_points =
  (* points the solve pipeline can reach; the server-side lane point is
     exercised by the chaos suite's panic-barrier test instead *)
  List.filter
    (fun p -> p <> "sat.all_sat" && p <> "server.lane")
    Faults.known

let with_faults f =
  Fun.protect ~finally:Faults.disarm_all f

let solve_span_closed tel =
  (* Aggregates are recorded when a span closes; a "solve" aggregate with
     one call proves the top-level span survived the injected fault. *)
  match List.assoc_opt "solve" (Telemetry.span_aggregates tel) with
  | Some agg -> agg.Telemetry.agg_calls = 1
  | None -> false

let test_fault_trip_every_point () =
  let p = mixed_problem () in
  List.iter
    (fun point ->
      with_faults (fun () ->
          Faults.arm ~point (Faults.Trip Err.Timeout);
          let tel = Telemetry.create () in
          let options =
            {
              A.Engine.default_options with
              A.Engine.budget = Budget.create ();
              telemetry = tel;
            }
          in
          match A.Engine.solve ~options p with
          | exception e ->
            Alcotest.failf "%s: escaped exception %s" point
              (Printexc.to_string e)
          | result, stats ->
            check bool_t (point ^ " fired") true (Faults.hits point >= 1);
            (match result with
            | A.Engine.R_unknown _ -> ()
            | _ -> Alcotest.failf "%s: expected unknown after trip" point);
            (match stats.A.Engine.budget_exhausted with
            | Some Err.Timeout -> ()
            | _ ->
              Alcotest.failf "%s: trip reason not mirrored in stats" point);
            check bool_t (point ^ " span closed") true (solve_span_closed tel)))
    engine_points

let test_fault_raise_every_point () =
  let p = mixed_problem () in
  List.iter
    (fun point ->
      with_faults (fun () ->
          Faults.arm ~point Faults.Raise;
          let tel = Telemetry.create () in
          let options =
            {
              A.Engine.default_options with
              A.Engine.budget = Budget.create ();
              telemetry = tel;
            }
          in
          match A.Engine.solve ~options p with
          | exception e ->
            Alcotest.failf "%s: injected crash escaped the engine: %s" point
              (Printexc.to_string e)
          | result, stats ->
            check bool_t (point ^ " fired") true (Faults.hits point >= 1);
            (match result with
            | A.Engine.R_unknown _ -> ()
            | _ -> Alcotest.failf "%s: expected unknown after crash" point);
            (match stats.A.Engine.budget_exhausted with
            | Some (Err.Internal _) -> ()
            | _ ->
              Alcotest.failf
                "%s: contained crash should surface as Internal" point);
            check bool_t (point ^ " span closed") true (solve_span_closed tel)))
    engine_points

let test_fault_all_sat () =
  (* The enumeration entry point is not under the engine boundary; its
     own boundary converts a trip into a typed Error. *)
  with_faults (fun () ->
      Faults.arm ~point:"sat.all_sat" (Faults.Trip Err.Cancelled);
      match
        AS.enumerate ~budget:(Budget.create ()) ~num_vars:3 [ [ T.pos 0 ] ]
      with
      | Error Err.Cancelled -> ()
      | Error _ -> Alcotest.fail "wrong typed reason"
      | Ok _ -> Alcotest.fail "armed trip did not fire"
      | exception e ->
        Alcotest.failf "all_sat escaped exception %s" (Printexc.to_string e));
  (* An injected crash, by contract, escapes library boundaries and is
     only contained by Budget.guard at the engine; assert the harness
     actually raises so that contract stays honest. *)
  with_faults (fun () ->
      Faults.arm ~point:"sat.all_sat" Faults.Raise;
      match
        AS.enumerate ~budget:(Budget.create ()) ~num_vars:3 [ [ T.pos 0 ] ]
      with
      | exception Faults.Injected "sat.all_sat" -> ()
      | exception e ->
        Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "armed crash did not fire")

let test_fault_unknown_point_rejected () =
  match Faults.arm ~point:"no.such.point" (Faults.Trip Err.Timeout) with
  | () ->
    Faults.disarm_all ();
    Alcotest.fail "unknown point accepted"
  | exception Invalid_argument _ -> Faults.disarm_all ()

let suite =
  [
    ("budget: unlimited is free", `Quick, test_unlimited_is_free);
    ("budget: step limit", `Quick, test_step_budget);
    ("budget: deadline", `Quick, test_deadline);
    ("budget: memory limit", `Quick, test_memory_budget);
    ("budget: cancellation", `Quick, test_cancellation);
    ("budget: first trip wins", `Quick, test_first_trip_wins);
    ("budget: guard", `Quick, test_guard);
    ("error rendering", `Quick, test_error_rendering);
    ("fuzz: budgets never flip answers", `Quick, test_fuzz_never_flips);
    ("fuzz: nonlinear degradation", `Quick, test_fuzz_nonlinear_degrades);
    ("fuzz: all-models anytime", `Quick, test_fuzz_all_models_anytime);
    ("generous budget is bit-identical", `Quick, test_generous_budget_bit_identical);
    ("faults: trip at every point", `Quick, test_fault_trip_every_point);
    ("faults: crash at every point", `Quick, test_fault_raise_every_point);
    ("faults: all-sat boundary", `Quick, test_fault_all_sat);
    ("faults: unknown point rejected", `Quick, test_fault_unknown_point_rejected);
  ]
