let () =
  Alcotest.run "absolver"
    [
      ("numeric", Test_numeric.suite);
      ("sat", Test_sat.suite);
      ("lp", Test_lp.suite);
      ("nlp", Test_nlp.suite);
      ("circuit", Test_circuit.suite);
      ("core", Test_core.suite);
      ("model", Test_model.suite);
      ("smtlib", Test_smtlib.suite);
      ("baselines", Test_baselines.suite);
      ("encodings", Test_encodings.suite);
      ("preprocess", Test_preprocess.suite);
      ("telemetry", Test_telemetry.suite);
      ("tracetool", Test_tracetool.suite);
      ("resource", Test_resource.suite);
      ("incremental", Test_incremental.suite);
      ("parallel", Test_parallel.suite);
      ("server", Test_server.suite);
      ("chaos", Test_chaos.suite);
      ("integration", Test_integration.suite);
      ("extra", Test_extra.suite);
      ("proof-diagnosis", Test_proof_diagnosis.suite);
      ("flatcore", Test_flatcore.suite);
      ("relax", Test_relax.suite);
    ]
