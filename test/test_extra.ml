(* Second-wave tests: engine options and budgets, solver-list fallback
   semantics, generator round-trips, and edge cases found during review. *)

module A = Absolver_core
module M = Absolver_model
module E = Absolver_nlp.Expr
module Box = Absolver_nlp.Box
module L = Absolver_lp.Linexpr
module T = Absolver_sat.Types
module AS = Absolver_sat.All_sat
module C = Absolver_sat.Cdcl
module Q = Absolver_numeric.Rational
module I = Absolver_numeric.Interval

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let parse text =
  match A.Dimacs_ext.parse_string text with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %s" e

(* ------------------------------------------------------------------ *)
(* The paper's solver-list semantics: "at each of those steps a list of
   solvers is used ... if the preceding solvers thereof failed". *)

let test_nonlinear_solver_fallback () =
  let gave_up_calls = ref 0 in
  let give_up =
    {
      A.Registry.ns_name = "always-unknown";
      ns_solve =
        (fun ~relax:_ ~budget:_ ~telemetry:_ ~nvars:_ ~box:_ _ ->
          incr gave_up_calls;
          (A.Registry.N_unknown, Absolver_nlp.Branch_prune.empty_stats));
    }
  in
  let registry =
    {
      A.Registry.default with
      A.Registry.nonlinear = [ give_up; A.Registry.branch_prune_solver () ];
    }
  in
  let p =
    parse "p cnf 1 1\n1 0\nc def real 1 x * x <= 4\nc bound x -10 10\n"
  in
  match A.Engine.solve ~registry p with
  | A.Engine.R_sat sol, _ ->
    check bool_t "first solver was consulted" true (!gave_up_calls >= 1);
    check bool_t "verified" true (A.Solution.check p sol = Ok ())
  | _ -> Alcotest.fail "fallback solver should have answered"

let test_nonlinear_all_solvers_fail () =
  let give_up =
    {
      A.Registry.ns_name = "always-unknown";
      ns_solve =
        (fun ~relax:_ ~budget:_ ~telemetry:_ ~nvars:_ ~box:_ _ ->
          (A.Registry.N_unknown, Absolver_nlp.Branch_prune.empty_stats));
    }
  in
  let registry = { A.Registry.default with A.Registry.nonlinear = [ give_up ] } in
  let p = parse "p cnf 1 1\n1 0\nc def real 1 x * x <= 4\nc bound x -10 10\n" in
  match A.Engine.solve ~registry p with
  | A.Engine.R_unknown _, _ -> ()
  | _ -> Alcotest.fail "no solver could answer: result must be unknown"

(* ------------------------------------------------------------------ *)
(* Engine budgets.                                                     *)

let test_engine_model_budget () =
  (* Many spurious Boolean models, tiny budget: Unknown, not a wrong
     UNSAT. *)
  let p =
    parse
      {|p cnf 4 1
1 2 3 4 0
c def real 1 u >= 5
c def real 2 u <= 1
c def real 3 u >= 7
c def real 4 u <= -1
|}
  in
  let options = { A.Engine.default_options with A.Engine.max_bool_models = 1 } in
  match A.Engine.solve ~options p with
  | A.Engine.R_unknown _, _ | A.Engine.R_sat _, _ -> ()
  | A.Engine.R_unsat, _ -> Alcotest.fail "budget exhaustion must not claim unsat"

let test_engine_eq_split_limit () =
  (* 3 negated equations with a limit of 2: the engine must give up
     honestly. *)
  let p =
    parse
      {|p cnf 3 3
-1 0
-2 0
-3 0
c def real 1 u = 1
c def real 2 v = 2
c def real 3 w = 3
c bound u 0 10
c bound v 0 10
c bound w 0 10
|}
  in
  let options = { A.Engine.default_options with A.Engine.eq_split_limit = 2 } in
  (match A.Engine.solve ~options p with
  | A.Engine.R_unknown _, _ -> ()
  | _ -> Alcotest.fail "expected unknown at the split limit");
  (* With the default limit it solves. *)
  match A.Engine.solve p with
  | A.Engine.R_sat sol, _ -> check bool_t "verified" true (A.Solution.check p sol = Ok ())
  | _ -> Alcotest.fail "expected sat"

let test_engine_minimize_conflicts_same_verdict () =
  let p =
    parse
      {|p cnf 3 2
1 2 0
3 0
c def real 1 u >= 5
c def real 2 u >= 6
c def real 3 u <= 1
|}
  in
  let v options =
    match fst (A.Engine.solve ~options p) with
    | A.Engine.R_sat _ -> "sat"
    | A.Engine.R_unsat -> "unsat"
    | A.Engine.R_unknown _ -> "unknown"
  in
  check Alcotest.string "minimization preserves verdict"
    (v A.Engine.default_options)
    (v { A.Engine.default_options with A.Engine.minimize_conflicts = true })

let test_engine_relaxation_off_still_sound () =
  let p =
    parse
      {|p cnf 2 2
1 0
2 0
c def real 1 x * y >= 4
c def real 2 x + y <= 1
c bound x 0 4
c bound y 0 4
|}
  in
  (* x+y <= 1 with x,y >= 0 gives xy <= 1/4 < 4: unsat either way. *)
  let v flag =
    match
      fst
        (A.Engine.solve
           ~options:{ A.Engine.default_options with A.Engine.use_linear_relaxation = flag }
           p)
    with
    | A.Engine.R_unsat -> "unsat"
    | A.Engine.R_sat _ -> "sat"
    | A.Engine.R_unknown _ -> "unknown"
  in
  check Alcotest.string "relax on" "unsat" (v true);
  check Alcotest.string "relax off" "unsat" (v false)

(* ------------------------------------------------------------------ *)
(* All-SAT streaming interface.                                        *)

let test_allsat_iter_stop () =
  let solver = C.create () in
  C.ensure_vars solver 3;
  let seen = ref 0 in
  match
    AS.iter ~solver
      (fun _ ->
        incr seen;
        if !seen >= 2 then `Stop else `Continue)
      ()
  with
  | Ok n ->
    check int_t "visited" 2 n;
    check int_t "callback count" 2 !seen
  | Error e -> Alcotest.fail (Absolver_resource.Absolver_error.to_string e)

let test_allsat_count () =
  match AS.count ~num_vars:3 [ [ T.pos 0 ] ] with
  | Ok n -> check int_t "count" 4 n
  | Error e -> Alcotest.fail (Absolver_resource.Absolver_error.to_string e)

(* ------------------------------------------------------------------ *)
(* Model round-trips at scale.                                         *)

let test_steering_text_roundtrip () =
  let d = M.Steering.diagram () in
  let text = M.Simulink_text.to_string ~name:"steering" d in
  match M.Simulink_text.parse_string text with
  | Error e -> Alcotest.fail e
  | Ok (_, d2) -> (
    check int_t "blocks preserved" (M.Diagram.num_blocks d) (M.Diagram.num_blocks d2);
    (* The reparsed diagram converts to an identical-statistics problem. *)
    match M.Convert.diagram_to_ab ~name:"steering" ~output:"ok" d2 with
    | Error e -> Alcotest.fail e
    | Ok p ->
      check bool_t "same stats" true
        (A.Ab_problem.stats p = A.Ab_problem.stats (M.Steering.problem ())))

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let test_steering_lustre_text () =
  let node = M.Steering.lustre_node () in
  let text = M.Lustre.to_string node in
  List.iter
    (fun s -> check bool_t ("mentions " ^ s) true (contains text s))
    [ "yaw"; "a_lat"; "v_fl"; "delta"; "node steering"; "tel" ]

(* ------------------------------------------------------------------ *)
(* Dimacs_ext details.                                                 *)

let test_bound_underscore () =
  let p = parse "p cnf 1 1\n1 0\nc def real 1 x >= 0\nc bound x _ 5\n" in
  let x = Option.get (A.Ab_problem.arith_var_index p "x") in
  match List.assoc_opt x (A.Ab_problem.bounds p) with
  | Some (None, Some hi) -> check bool_t "upper 5" true (Q.equal hi (Q.of_int 5))
  | _ -> Alcotest.fail "expected open lower bound"

let test_def_with_both_sides () =
  (* Relations with expressions on both sides normalize correctly. *)
  let p = parse "p cnf 1 1\n1 0\nc def real 1 2 * x + 1 <= x + 4\n" in
  match A.Ab_problem.defs p with
  | [ d ] -> (
    match E.linearize d.A.Ab_problem.rel.E.expr with
    | Some le ->
      check bool_t "x - 3" true
        (Q.equal (L.coeff le 0) Q.one && Q.equal (L.const le) (Q.of_int (-3)))
    | None -> Alcotest.fail "linear expected")
  | _ -> Alcotest.fail "one def expected"

(* ------------------------------------------------------------------ *)
(* Interval edges.                                                     *)

let test_interval_log_sqrt_domains () =
  check bool_t "log of nonpositive empty" true (I.is_empty (I.log (I.make (-3.0) (-1.0))));
  check bool_t "sqrt of negative empty" true (I.is_empty (I.sqrt (I.make (-3.0) (-1.0))));
  let r = I.sqrt (I.make (-1.0) 4.0) in
  check bool_t "sqrt clips domain" true (r.I.lo >= 0.0 && r.I.hi >= 2.0 && r.I.hi < 2.01);
  let l = I.log (I.make 0.0 1.0) in
  check bool_t "log hits -inf" true (l.I.lo = Float.neg_infinity && l.I.hi >= 0.0)

let test_hc4_max_rounds_terminates () =
  (* A constraint that keeps contracting slowly must still terminate. *)
  let b = Box.of_bounds [ (0, I.make 0.0 1.0) ] 1 in
  let rel =
    {
      E.expr = E.sub (E.mul (E.var 0) (E.const (Q.of_decimal_string "0.5"))) (E.var 0);
      op = L.Ge;
      tag = 0;
    }
  in
  (* x/2 >= x over [0,1] forces x = 0; fixpoint takes many rounds. *)
  let alive = Absolver_nlp.Hc4.contract ~max_rounds:5 b [ rel ] in
  check bool_t "still alive" true alive;
  check bool_t "contracted toward zero" true ((Box.get b 0).I.hi < 1.0)

(* ------------------------------------------------------------------ *)
(* Circuit/solution agreement on a purely linear problem.              *)

let test_circuit_agrees_with_solution () =
  let p =
    parse
      {|p cnf 2 2
1 0
-2 0
c def real 1 u >= 1
c def real 2 u <= 0
c bound u -100 100
|}
  in
  match A.Engine.solve p with
  | A.Engine.R_sat sol, _ ->
    let circuit = A.Ab_problem.to_circuit p in
    let v =
      Absolver_circuit.Circuit.eval
        ~bool_env:(fun b -> Absolver_circuit.Tribool.of_bool sol.A.Solution.bools.(b))
        ~arith_env:(fun av -> A.Solution.arith_env sol av)
        circuit
    in
    (* Exact rational values: the circuit must evaluate to tt. *)
    check bool_t "circuit tt" true (v = Absolver_circuit.Tribool.True)
  | _ -> Alcotest.fail "sat expected"

let suite =
  [
    ("nonlinear solver fallback", `Quick, test_nonlinear_solver_fallback);
    ("all nonlinear solvers fail", `Quick, test_nonlinear_all_solvers_fail);
    ("engine model budget", `Quick, test_engine_model_budget);
    ("engine eq-split limit", `Quick, test_engine_eq_split_limit);
    ("conflict minimization preserves verdict", `Quick, test_engine_minimize_conflicts_same_verdict);
    ("relaxation off still sound", `Quick, test_engine_relaxation_off_still_sound);
    ("all-sat iter stop", `Quick, test_allsat_iter_stop);
    ("all-sat count", `Quick, test_allsat_count);
    ("steering text roundtrip", `Quick, test_steering_text_roundtrip);
    ("steering lustre text", `Quick, test_steering_lustre_text);
    ("bound with open end", `Quick, test_bound_underscore);
    ("def with both sides", `Quick, test_def_with_both_sides);
    ("interval log/sqrt domains", `Quick, test_interval_log_sqrt_domains);
    ("hc4 bounded rounds", `Quick, test_hc4_max_rounds_terminates);
    ("circuit agrees with exact solution", `Quick, test_circuit_agrees_with_solution);
  ]

(* ------------------------------------------------------------------ *)
(* Test-case generation (paper Sec. 6 future work).                    *)

let thermostat_diagram () =
  (* alarm = (temp > 30) or (temp < 5) *)
  let d = M.Diagram.create () in
  let t = M.Diagram.add_block d (M.Block.B_inport { name = "temp"; lo = Some (Q.of_int (-40)); hi = Some (Q.of_int 125); integer = false }) in
  let hot = M.Diagram.add_block d (M.Block.B_compare (M.Block.C_gt, Q.of_int 30)) in
  let cold = M.Diagram.add_block d (M.Block.B_compare (M.Block.C_lt, Q.of_int 5)) in
  let either = M.Diagram.add_block d (M.Block.B_or 2) in
  let out = M.Diagram.add_block d (M.Block.B_outport "alarm") in
  M.Diagram.connect d ~src:t ~dst:hot ~port:0;
  M.Diagram.connect d ~src:t ~dst:cold ~port:0;
  M.Diagram.connect d ~src:hot ~dst:either ~port:0;
  M.Diagram.connect d ~src:cold ~dst:either ~port:1;
  M.Diagram.connect d ~src:either ~dst:out ~port:0;
  d

let test_testgen_coverage () =
  match M.Testgen.generate ~output:"alarm" (thermostat_diagram ()) with
  | Error e -> Alcotest.fail e
  | Ok cov ->
    (* Feasible patterns: (hot, ~cold), (~hot, cold), (~hot, ~cold);
       (hot, cold) is arithmetically impossible. Two drive the alarm. *)
    check int_t "patterns" 3 cov.M.Testgen.patterns_total;
    check int_t "alarm patterns" 2 cov.M.Testgen.patterns_true;
    (* Every test vector drives the diagram to its recorded output. *)
    List.iter
      (fun (tc : M.Testgen.test_case) ->
        let temp = List.assoc "temp" tc.M.Testgen.inputs in
        let expected = temp > 30.0 || temp < 5.0 in
        check bool_t "vector consistent" expected tc.M.Testgen.output_value)
      cov.M.Testgen.cases

let test_testgen_csv () =
  match M.Testgen.generate ~output:"alarm" (thermostat_diagram ()) with
  | Error e -> Alcotest.fail e
  | Ok cov ->
    let csv = M.Testgen.to_csv cov in
    check bool_t "header" true (contains csv "temp,expected_output");
    check int_t "rows" (1 + cov.M.Testgen.patterns_total)
      (List.length (String.split_on_char '\n' (String.trim csv)))

let suite =
  suite
  @ [
      ("testgen coverage", `Quick, test_testgen_coverage);
      ("testgen csv", `Quick, test_testgen_csv);
    ]

(* ------------------------------------------------------------------ *)
(* Optimization modulo Boolean structure.                              *)

let test_optimize_two_disjuncts () =
  (* (u <= 2) or (u >= 5 and u <= 7), u in [0, 10]; max u = 7 in the
     second disjunct, min u = 0 in the first. *)
  let p =
    parse
      {|p cnf 3 2
1 2 0
-2 3 0
c def real 1 u <= 2
c def real 2 u >= 5
c def real 3 u <= 7
c bound u 0 10
|}
  in
  let obj = L.var 0 in
  (match A.Engine.optimize ~objective:obj `Maximize p with
  | A.Engine.Opt_best (v, sol) ->
    check bool_t "max 7" true (Q.equal v (Q.of_int 7));
    check bool_t "witness verifies" true (A.Solution.check p sol = Ok ())
  | _ -> Alcotest.fail "expected an optimum");
  match A.Engine.optimize ~objective:obj `Minimize p with
  | A.Engine.Opt_best (v, _) -> check bool_t "min 0" true (Q.is_zero v)
  | _ -> Alcotest.fail "expected a minimum"

let test_optimize_unbounded_direction () =
  let p = parse "p cnf 1 1\n1 0\nc def real 1 u >= 0\n" in
  match A.Engine.optimize ~objective:(L.var 0) `Maximize p with
  | A.Engine.Opt_unbounded -> ()
  | _ -> Alcotest.fail "u >= 0 has no maximum"

let test_optimize_unsat_problem () =
  let p = parse "p cnf 2 2\n1 0\n2 0\nc def real 1 u <= 1\nc def real 2 u >= 2\n" in
  match A.Engine.optimize ~objective:(L.var 0) `Maximize p with
  | A.Engine.Opt_unsat -> ()
  | _ -> Alcotest.fail "unsat expected"

let test_optimize_rejects_nonlinear () =
  let p = parse "p cnf 1 1\n1 0\nc def real 1 u * u <= 4\nc bound u 0 10\n" in
  match A.Engine.optimize ~objective:(L.var 0) `Maximize p with
  | A.Engine.Opt_unknown _ -> ()
  | _ -> Alcotest.fail "nonlinear must be rejected"

let suite =
  suite
  @ [
      ("omt: disjuncts", `Quick, test_optimize_two_disjuncts);
      ("omt: unbounded", `Quick, test_optimize_unbounded_direction);
      ("omt: unsat", `Quick, test_optimize_unsat_problem);
      ("omt: rejects nonlinear", `Quick, test_optimize_rejects_nonlinear);
    ]
