(* Tests for the linear-arithmetic layer: Linexpr, Simplex, Conflict. *)

module Q = Absolver_numeric.Rational
module DR = Absolver_numeric.Delta_rational
module L = Absolver_lp.Linexpr
module S = Absolver_lp.Simplex
module Cf = Absolver_lp.Conflict

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let q = Q.of_int
let cons expr op tag = { L.expr; op; tag }

(* ------------------------------------------------------------------ *)
(* Linexpr.                                                            *)

let test_linexpr_construction () =
  let e = L.of_list [ (q 2, 0); (q 3, 1); (q (-2), 0) ] (q 5) in
  check bool_t "coeff x0 folded to 0" true (Q.is_zero (L.coeff e 0));
  check bool_t "coeff x1" true (Q.equal (L.coeff e 1) (q 3));
  check bool_t "const" true (Q.equal (L.const e) (q 5));
  check bool_t "vars" true (L.vars e = [ 1 ])

let test_linexpr_arith () =
  let a = L.of_list [ (q 1, 0); (q 2, 1) ] (q 1) in
  let b = L.of_list [ (q 3, 0); (q (-2), 1) ] (q 2) in
  let s = L.add a b in
  check bool_t "add x0" true (Q.equal (L.coeff s 0) (q 4));
  check bool_t "add x1 cancels" true (Q.is_zero (L.coeff s 1));
  check bool_t "add const" true (Q.equal (L.const s) (q 3));
  let d = L.scale (q 2) a in
  check bool_t "scale" true (Q.equal (L.coeff d 1) (q 4));
  check bool_t "sub self zero" true (L.equal (L.sub a a) (L.constant Q.zero))

let test_linexpr_eval_holds () =
  let e = L.of_list [ (q 2, 0); (q 1, 1) ] (q (-10)) in
  let env v = if v = 0 then q 3 else q 4 in
  check bool_t "eval" true (Q.is_zero (L.eval env e));
  check bool_t "holds eq" true (L.holds env (cons e L.Eq 0));
  check bool_t "holds le" true (L.holds env (cons e L.Le 0));
  check bool_t "not holds lt" false (L.holds env (cons e L.Lt 0))

let test_negate_op () =
  check bool_t "le -> gt" true (L.negate_op L.Le = L.Gt);
  check bool_t "lt -> ge" true (L.negate_op L.Lt = L.Ge);
  Alcotest.check_raises "eq has no negation"
    (Invalid_argument "Linexpr.negate_op: Eq splits into Lt/Gt") (fun () ->
      ignore (L.negate_op L.Eq))

(* ------------------------------------------------------------------ *)
(* Simplex one-shot.                                                   *)

let solve = S.solve_system

let test_simplex_simple_sat () =
  (* x >= 1, x <= 3, x + y = 5, y >= 3  ->  x = 2..?, actually x in [1,2] *)
  let x = 0 and y = 1 in
  let cs =
    [
      cons (L.of_list [ (q 1, x) ] (q (-1))) L.Ge 0;
      cons (L.of_list [ (q 1, x) ] (q (-3))) L.Le 1;
      cons (L.of_list [ (q 1, x); (q 1, y) ] (q (-5))) L.Eq 2;
      cons (L.of_list [ (q 1, y) ] (q (-3))) L.Ge 3;
    ]
  in
  match solve cs with
  | S.Unsat _ | S.Unknown _ -> Alcotest.fail "expected sat"
  | S.Sat model ->
    let env v = Option.value ~default:Q.zero (List.assoc_opt v model) in
    check bool_t "all hold" true (List.for_all (L.holds env) cs)

let test_simplex_simple_unsat () =
  let x = 0 in
  let cs =
    [
      cons (L.of_list [ (q 1, x) ] (q (-5))) L.Ge 0;
      cons (L.of_list [ (q 1, x) ] (q (-3))) L.Le 1;
    ]
  in
  match solve cs with
  | S.Sat _ | S.Unknown _ -> Alcotest.fail "expected unsat"
  | S.Unsat tags -> check bool_t "core is {0,1}" true (List.sort compare tags = [ 0; 1 ])

let test_simplex_strict () =
  (* x > 0 and x < 1 is satisfiable with exact strictness. *)
  let x = 0 in
  let cs =
    [
      cons (L.of_list [ (q 1, x) ] Q.zero) L.Gt 0;
      cons (L.of_list [ (q 1, x) ] (Q.neg Q.one)) L.Lt 1;
    ]
  in
  (match solve cs with
  | S.Unsat _ | S.Unknown _ -> Alcotest.fail "expected sat"
  | S.Sat model ->
    let v = List.assoc 0 model in
    check bool_t "0 < x < 1" true (Q.gt v Q.zero && Q.lt v Q.one));
  (* x > 0 and x < 0 is not. *)
  let cs2 =
    [
      cons (L.of_list [ (q 1, x) ] Q.zero) L.Gt 0;
      cons (L.of_list [ (q 1, x) ] Q.zero) L.Lt 1;
    ]
  in
  match solve cs2 with
  | S.Sat _ | S.Unknown _ -> Alcotest.fail "expected unsat"
  | S.Unsat _ -> ()

let test_simplex_strict_boundary () =
  (* x >= 3 and x < 3: infeasible only because of strictness. *)
  let cs =
    [
      cons (L.of_list [ (q 1, 0) ] (q (-3))) L.Ge 0;
      cons (L.of_list [ (q 1, 0) ] (q (-3))) L.Lt 1;
    ]
  in
  match solve cs with
  | S.Sat _ | S.Unknown _ -> Alcotest.fail "expected unsat (strictness)"
  | S.Unsat _ -> ()

let test_simplex_constant_constraints () =
  (* Constraints with no variables. *)
  (match solve [ cons (L.constant (q (-1))) L.Le 0 ] with
  | S.Sat _ -> ()
  | S.Unsat _ | S.Unknown _ -> Alcotest.fail "-1 <= 0 should hold");
  match solve [ cons (L.constant (q 1)) L.Le 7 ] with
  | S.Sat _ | S.Unknown _ -> Alcotest.fail "1 <= 0 should fail"
  | S.Unsat tags -> check bool_t "tag" true (tags = [ 7 ])

let test_simplex_shared_slack () =
  (* The same expression under two bounds shares one slack variable. *)
  let e = L.of_list [ (q 1, 0); (q 1, 1) ] Q.zero in
  let t = S.create () in
  let v1 = S.define t e in
  let v2 = S.define t e in
  check int_t "shared" v1 v2

let test_simplex_incremental_push_pop () =
  let t = S.create () in
  let x = S.new_var t in
  let ge c tag = S.assert_bound t ~tag x S.Lower (DR.of_rational (q c)) in
  let le c tag = S.assert_bound t ~tag x S.Upper (DR.of_rational (q c)) in
  check bool_t "x >= 0" true (ge 0 0 = S.Feasible);
  S.push t;
  check bool_t "x <= -1 conflicts" true
    (match le (-1) 1 with S.Infeasible _ -> true | S.Feasible -> false);
  S.pop t;
  check bool_t "after pop x <= 5 fine" true (le 5 2 = S.Feasible);
  check bool_t "check feasible" true (S.check t = S.Feasible)

let test_simplex_pop_restores () =
  let t = S.create () in
  let x = S.new_var t in
  ignore (S.assert_bound t ~tag:0 x S.Lower (DR.of_rational (q 0)));
  S.push t;
  ignore (S.assert_bound t ~tag:1 x S.Lower (DR.of_rational (q 10)));
  check bool_t "tight feasible" true (S.check t = S.Feasible);
  S.pop t;
  (* After pop the old bound is back: x <= 5 must be feasible again. *)
  check bool_t "x <= 5 after pop" true
    (S.assert_bound t ~tag:2 x S.Upper (DR.of_rational (q 5)) = S.Feasible);
  check bool_t "check" true (S.check t = S.Feasible)

let test_simplex_integer_bb () =
  (* 1/2 <= x <= 3/2, x integer -> x = 1. *)
  let cs =
    [
      cons (L.of_list [ (q 1, 0) ] (Q.of_ints (-1) 2)) L.Ge 0;
      cons (L.of_list [ (q 1, 0) ] (Q.of_ints (-3) 2)) L.Le 1;
    ]
  in
  (match S.solve_system ~int_vars:[ 0 ] cs with
  | S.Sat [ (0, v) ] -> check bool_t "x = 1" true (Q.equal v Q.one)
  | S.Sat _ | S.Unsat _ | S.Unknown _ -> Alcotest.fail "expected x=1");
  (* 2x = 1 has no integer solution. *)
  let cs2 = [ cons (L.of_list [ (q 2, 0) ] (Q.neg Q.one)) L.Eq 0 ] in
  match S.solve_system ~int_vars:[ 0 ] cs2 with
  | S.Sat _ | S.Unknown _ -> Alcotest.fail "2x=1 has no integer solution"
  | S.Unsat _ -> ()

let test_simplex_big_coefficients () =
  (* Exactness across large coefficients (would overflow machine ints). *)
  let big = Q.of_decimal_string "123456789123456789" in
  let cs =
    [
      cons (L.of_list [ (big, 0) ] (Q.neg (Q.mul big (q 3)))) L.Eq 0;
      cons (L.of_list [ (q 1, 0) ] (q (-3))) L.Eq 1;
    ]
  in
  match solve cs with
  | S.Sat model -> check bool_t "x=3" true (Q.equal (List.assoc 0 model) (q 3))
  | S.Unsat _ | S.Unknown _ -> Alcotest.fail "expected consistent"

(* Property: planted-solution systems are found satisfiable with valid
   models; reported cores re-verify as infeasible. *)

let arb_system =
  let open QCheck in
  let arb_q = map (fun (n, d) -> Q.of_ints n (1 + abs d)) (pair (int_range (-8) 8) (int_range 0 4)) in
  let arb_point = list_of_size (Gen.return 4) arb_q in
  let arb_rows = list_of_size (Gen.int_range 1 10) (pair (list_of_size (Gen.int_range 1 3) (pair arb_q (int_range 0 3))) (int_range 0 4)) in
  pair arb_point arb_rows

let prop_planted_sat =
  QCheck.Test.make ~name:"simplex planted solutions" ~count:300 arb_system
    (fun (point, rows) ->
      let point = Array.of_list point in
      let cs =
        List.mapi
          (fun tag (terms, opsel) ->
            let e = L.of_list terms Q.zero in
            let v = L.eval (fun i -> point.(i)) e in
            let op, const =
              match opsel mod 5 with
              | 0 -> (L.Le, Q.neg v)
              | 1 -> (L.Ge, Q.neg v)
              | 2 -> (L.Lt, Q.neg (Q.add v Q.one))
              | 3 -> (L.Gt, Q.neg (Q.sub v Q.one))
              | _ -> (L.Eq, Q.neg v)
            in
            cons (L.set_const e const) op tag)
          rows
      in
      match solve cs with
      | S.Unsat _ | S.Unknown _ -> false
      | S.Sat model ->
        let env v = Option.value ~default:Q.zero (List.assoc_opt v model) in
        List.for_all (L.holds env) cs)

let prop_unsat_core_infeasible =
  QCheck.Test.make ~name:"simplex cores re-verify" ~count:300 arb_system
    (fun (_, rows) ->
      let cs =
        List.mapi
          (fun tag (terms, opsel) ->
            let e = L.of_list terms (Q.of_int (opsel - 2)) in
            let op =
              match opsel mod 5 with
              | 0 -> L.Le
              | 1 -> L.Ge
              | 2 -> L.Lt
              | 3 -> L.Gt
              | _ -> L.Eq
            in
            cons e op tag)
          rows
      in
      match solve cs with
      | S.Unknown _ -> false
      | S.Sat model ->
        let env v = Option.value ~default:Q.zero (List.assoc_opt v model) in
        List.for_all (L.holds env) cs
      | S.Unsat tags ->
        let core = List.filter (fun (c : L.cons) -> List.mem c.L.tag tags) cs in
        Cf.is_infeasible core)

(* ------------------------------------------------------------------ *)
(* Conflict minimization.                                              *)

let test_conflict_minimize () =
  (* {x>=5, x<=3, y>=0}: minimal core is the first two. *)
  let cs =
    [
      cons (L.of_list [ (q 1, 0) ] (q (-5))) L.Ge 0;
      cons (L.of_list [ (q 1, 0) ] (q (-3))) L.Le 1;
      cons (L.of_list [ (q 1, 1) ] Q.zero) L.Ge 2;
    ]
  in
  let core = Cf.minimize cs in
  check int_t "core size" 2 (List.length core);
  check bool_t "core tags" true
    (List.sort compare (List.map (fun (c : L.cons) -> c.L.tag) core) = [ 0; 1 ]);
  Alcotest.check_raises "feasible input rejected"
    (Invalid_argument "Conflict.minimize: system is feasible") (fun () ->
      ignore (Cf.minimize [ cons (L.of_list [ (q 1, 0) ] Q.zero) L.Ge 9 ]))

let test_conflict_minimal_core_tags () =
  let cs =
    [
      cons (L.of_list [ (q 1, 0) ] (q (-5))) L.Ge 0;
      cons (L.of_list [ (q 1, 0) ] (q (-3))) L.Le 1;
      cons (L.of_list [ (q 1, 0) ] (q (-4))) L.Le 2;
    ]
  in
  (* {0,1,2} is infeasible; a minimal core keeps 0 and one upper bound. *)
  let tags = Cf.minimal_core cs [ 0; 1; 2 ] in
  check int_t "two tags" 2 (List.length tags);
  check bool_t "contains 0" true (List.mem 0 tags)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suite =
  [
    ("linexpr construction", `Quick, test_linexpr_construction);
    ("linexpr arithmetic", `Quick, test_linexpr_arith);
    ("linexpr eval/holds", `Quick, test_linexpr_eval_holds);
    ("negate_op", `Quick, test_negate_op);
    ("simplex sat", `Quick, test_simplex_simple_sat);
    ("simplex unsat with core", `Quick, test_simplex_simple_unsat);
    ("simplex strict inequalities", `Quick, test_simplex_strict);
    ("simplex strict boundary", `Quick, test_simplex_strict_boundary);
    ("simplex constant constraints", `Quick, test_simplex_constant_constraints);
    ("simplex shared slack", `Quick, test_simplex_shared_slack);
    ("simplex push/pop", `Quick, test_simplex_incremental_push_pop);
    ("simplex pop restores bounds", `Quick, test_simplex_pop_restores);
    ("simplex integer branch&bound", `Quick, test_simplex_integer_bb);
    ("simplex exact big coefficients", `Quick, test_simplex_big_coefficients);
    ("conflict minimize", `Quick, test_conflict_minimize);
    ("conflict minimal_core", `Quick, test_conflict_minimal_core_tags);
  ]
  @ qsuite [ prop_planted_sat; prop_unsat_core_infeasible ]

(* ------------------------------------------------------------------ *)
(* Optimization.                                                       *)

let assert_optimal r expected_q =
  match r with
  | S.O_optimal (v, _) ->
    check bool_t
      (Printf.sprintf "optimum = %s" (Q.to_string expected_q))
      true
      (Q.equal (DR.r v) expected_q && Q.is_zero (DR.k v))
  | S.O_unbounded -> Alcotest.fail "unexpectedly unbounded"
  | S.O_infeasible _ -> Alcotest.fail "unexpectedly infeasible"

let test_optimize_basic () =
  (* max x + y st x <= 3, y <= 4, x + y <= 6, x,y >= 0: optimum 6. *)
  let t = S.create () in
  S.ensure_vars t 2;
  let assert_all =
    [
      cons (L.of_list [ (q 1, 0) ] (q (-3))) L.Le 0;
      cons (L.of_list [ (q 1, 1) ] (q (-4))) L.Le 1;
      cons (L.of_list [ (q 1, 0); (q 1, 1) ] (q (-6))) L.Le 2;
      cons (L.of_list [ (q 1, 0) ] Q.zero) L.Ge 3;
      cons (L.of_list [ (q 1, 1) ] Q.zero) L.Ge 4;
    ]
  in
  List.iter (fun c -> assert (S.assert_cons t c = S.Feasible)) assert_all;
  let r = S.maximize t (L.of_list [ (q 1, 0); (q 1, 1) ] Q.zero) in
  assert_optimal r (q 6);
  (match r with
  | S.O_optimal (_, model) ->
    let x = List.assoc 0 model and y = List.assoc 1 model in
    check bool_t "model attains optimum" true (Q.equal (Q.add x y) (q 6));
    check bool_t "x within bounds" true (Q.leq x (q 3) && Q.geq x Q.zero)
  | _ -> ());
  (* minimize the same objective: 0 at the origin corner. *)
  assert_optimal (S.minimize_obj t (L.of_list [ (q 1, 0); (q 1, 1) ] Q.zero)) (q 0)

let test_optimize_unbounded () =
  let t = S.create () in
  S.ensure_vars t 1;
  assert (S.assert_cons t (cons (L.of_list [ (q 1, 0) ] Q.zero) L.Ge 0) = S.Feasible);
  match S.maximize t (L.of_list [ (q 1, 0) ] Q.zero) with
  | S.O_unbounded -> ()
  | S.O_optimal _ -> Alcotest.fail "x >= 0 has no maximum"
  | S.O_infeasible _ -> Alcotest.fail "feasible"

let test_optimize_infeasible () =
  (* Row-level infeasibility (x + y >= 5 with x,y <= 1) is only detectable
     by pivoting; bound-vs-bound conflicts would already be rejected at
     assert time without changing the state. *)
  let t = S.create () in
  S.ensure_vars t 2;
  assert (S.assert_cons t (cons (L.of_list [ (q 1, 0); (q 1, 1) ] (q (-5))) L.Ge 0) = S.Feasible);
  assert (S.assert_cons t (cons (L.of_list [ (q 1, 0) ] (q (-1))) L.Le 1) = S.Feasible);
  assert (S.assert_cons t (cons (L.of_list [ (q 1, 1) ] (q (-1))) L.Le 2) = S.Feasible);
  match S.maximize t (L.of_list [ (q 1, 0) ] Q.zero) with
  | S.O_infeasible tags -> check bool_t "core nonempty" true (tags <> [])
  | _ -> Alcotest.fail "infeasible expected"

let test_optimize_objective_constant () =
  (* Affine objective: max (x + 7) st x <= 2. *)
  let t = S.create () in
  S.ensure_vars t 1;
  ignore (S.assert_cons t (cons (L.of_list [ (q 1, 0) ] (q (-2))) L.Le 0));
  ignore (S.assert_cons t (cons (L.of_list [ (q 1, 0) ] Q.zero) L.Ge 1));
  assert_optimal (S.maximize t (L.of_list [ (q 1, 0) ] (q 7))) (q 9)

let test_optimize_degenerate_corner () =
  (* max 2x + 3y st x + y <= 4, x - y <= 0, y <= 3, x,y >= 0.
     Optimum at (1,3): 2 + 9 = 11. *)
  let t = S.create () in
  S.ensure_vars t 2;
  List.iter
    (fun c -> assert (S.assert_cons t c = S.Feasible))
    [
      cons (L.of_list [ (q 1, 0); (q 1, 1) ] (q (-4))) L.Le 0;
      cons (L.of_list [ (q 1, 0); (q (-1), 1) ] Q.zero) L.Le 1;
      cons (L.of_list [ (q 1, 1) ] (q (-3))) L.Le 2;
      cons (L.of_list [ (q 1, 0) ] Q.zero) L.Ge 3;
      cons (L.of_list [ (q 1, 1) ] Q.zero) L.Ge 4;
    ];
  assert_optimal (S.maximize t (L.of_list [ (q 2, 0); (q 3, 1) ] Q.zero)) (q 11)

let prop_optimum_dominates_samples =
  (* The reported optimum dominates the objective at any feasible point
     returned by independent solve_system calls on the same system. *)
  QCheck.Test.make ~name:"optimum dominates feasible points" ~count:200
    arb_system
    (fun (point, rows) ->
      let point = Array.of_list point in
      let cs =
        List.mapi
          (fun tag (terms, _) ->
            let e = L.of_list terms Q.zero in
            let v = L.eval (fun i -> point.(i)) e in
            (* Non-strict upper bound through the planted point + slack. *)
            cons (L.set_const e (Q.neg (Q.add v Q.one))) L.Le tag)
          rows
      in
      (* Box to keep the optimum finite. *)
      let box =
        List.concat_map
          (fun v ->
            [
              cons (L.of_list [ (Q.one, v) ] (Q.of_int (-50))) L.Le (1000 + v);
              cons (L.of_list [ (Q.one, v) ] (Q.of_int 50)) L.Ge (2000 + v);
            ])
          [ 0; 1; 2; 3 ]
      in
      let all = cs @ box in
      let t = S.create () in
      S.ensure_vars t 4;
      let ok = List.for_all (fun c -> S.assert_cons t c = S.Feasible) all in
      QCheck.assume ok;
      let objective = L.of_list [ (Q.one, 0); (Q.of_int 2, 1); (Q.of_int (-1), 2) ] Q.zero in
      match S.maximize t objective with
      | S.O_infeasible _ -> QCheck.assume_fail ()
      | S.O_unbounded -> false (* boxed: cannot be unbounded *)
      | S.O_optimal (opt, model) ->
        let env v = Option.value ~default:Q.zero (List.assoc_opt v model) in
        (* The optimal model is feasible and attains the value. *)
        List.for_all (L.holds env) all
        && Q.equal (L.eval env objective) (DR.r opt)
        &&
        (* The planted point is feasible by construction: dominated. *)
        Q.geq (DR.r opt) (L.eval (fun i -> point.(i)) objective))

let suite =
  suite
  @ [
      ("optimize basic", `Quick, test_optimize_basic);
      ("optimize unbounded", `Quick, test_optimize_unbounded);
      ("optimize infeasible", `Quick, test_optimize_infeasible);
      ("optimize affine objective", `Quick, test_optimize_objective_constant);
      ("optimize degenerate corner", `Quick, test_optimize_degenerate_corner);
    ]
  @ qsuite [ prop_optimum_dominates_samples ]
