(* Flat-core differential tests (DESIGN.md Sec. 16): the small-value-
   inlined rational representation checked against a Bigint-backed
   reference implementation, overflow boundaries at the 62-bit edge, and
   CSR tableau replay consistency. *)

module B = Absolver_numeric.Bigint
module Q = Absolver_numeric.Rational
module L = Absolver_lp.Linexpr
module S = Absolver_lp.Simplex

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Bigint-backed reference rationals: every operation goes through      *)
(* arbitrary-precision arithmetic with explicit normalization, so a     *)
(* divergence can only come from the inlined small-int fast paths.      *)

type bigq = { bn : B.t; bd : B.t }

let bq_norm n d =
  let n, d = if B.sign d < 0 then (B.neg n, B.neg d) else (n, d) in
  if B.is_zero n then { bn = B.zero; bd = B.one }
  else
    let g = B.gcd n d in
    { bn = B.div n g; bd = B.div d g }

let bq_of_q q = { bn = Q.num q; bd = Q.den q }

let bq_add a b =
  bq_norm (B.add (B.mul a.bn b.bd) (B.mul b.bn a.bd)) (B.mul a.bd b.bd)

let bq_sub a b =
  bq_norm (B.sub (B.mul a.bn b.bd) (B.mul b.bn a.bd)) (B.mul a.bd b.bd)

let bq_mul a b = bq_norm (B.mul a.bn b.bn) (B.mul a.bd b.bd)
let bq_div a b = bq_norm (B.mul a.bn b.bd) (B.mul a.bd b.bn)

(* Denominators are positive after normalization. *)
let bq_compare a b = B.compare (B.mul a.bn b.bd) (B.mul b.bn a.bd)

let same label q bq =
  if not (B.equal (Q.num q) bq.bn && B.equal (Q.den q) bq.bd) then
    Alcotest.failf "%s: got %s, reference %s/%s" label (Q.to_string q)
      (B.to_string bq.bn) (B.to_string bq.bd)

(* ------------------------------------------------------------------ *)
(* Seeded generators spanning the interesting magnitudes: tiny values   *)
(* (the dominant case in the solver), values near the 62-bit overflow   *)
(* boundary, and genuinely big values that must take the Bigint path.   *)

let rand_component st =
  match Random.State.int st 8 with
  | 0 | 1 | 2 -> Random.State.int st 21 - 10
  | 3 -> Random.State.int st 2_000_001 - 1_000_000
  | 4 -> (1 lsl 31) + Random.State.int st 1000
  | 5 -> max_int - Random.State.int st 3 (* 2^62 - 1 and neighbours *)
  | 6 -> -(max_int - Random.State.int st 3)
  | _ -> (1 lsl 45) * (Random.State.int st 100 + 1)

let rand_q st =
  match Random.State.int st 5 with
  | 0 | 1 | 2 ->
    let n = rand_component st in
    let d = rand_component st in
    Q.of_ints n (if d = 0 then 1 else d)
  | 3 ->
    (* Guaranteed beyond 62 bits: exercises the Big constructor and the
       demotion logic on results that shrink back. *)
    let big = B.mul (B.of_int (rand_component st)) (B.of_int (1 lsl 40)) in
    let d = rand_component st in
    Q.make (B.add big B.one) (B.of_int (if d = 0 then 1 else d))
  | _ -> Q.of_int (rand_component st)

let test_small_rational_differential () =
  let st = Random.State.make [| 0x5eed; 9 |] in
  for i = 1 to 400 do
    let x = rand_q st and y = rand_q st in
    let bx = bq_of_q x and by = bq_of_q y in
    let tag op = Printf.sprintf "case %d %s (%s, %s)" i op (Q.to_string x) (Q.to_string y) in
    same (tag "add") (Q.add x y) (bq_add bx by);
    same (tag "sub") (Q.sub x y) (bq_sub bx by);
    same (tag "mul") (Q.mul x y) (bq_mul bx by);
    if not (Q.is_zero y) then same (tag "div") (Q.div x y) (bq_div bx by);
    check int_t (tag "compare") (bq_compare bx by) (Q.compare x y);
    check bool_t (tag "equal<->compare") (Q.compare x y = 0) (Q.equal x y)
  done

(* The representation is canonical: a value is stored small iff it fits,
   so structurally distinct construction routes to the same rational
   must produce structurally identical values. Polymorphic compare over
   containers of rationals (nlp expressions) relies on this. *)
let test_small_rational_canonical () =
  let st = Random.State.make [| 0xca40 |] in
  for _ = 1 to 200 do
    let x = rand_q st in
    let via_big = Q.make (Q.num x) (Q.den x) in
    check bool_t "structural equality across routes" true
      (Stdlib.compare x via_big = 0);
    let doubled = Q.div (Q.mul x (Q.of_int 2)) (Q.of_int 2) in
    check bool_t "structural equality after round-trip arithmetic" true
      (Stdlib.compare x doubled = 0)
  done

let test_overflow_boundary () =
  (* max_int is 2^62 - 1: the largest small component. One past it must
     fall back to the Bigint representation and stay exact. *)
  let top = Q.of_int max_int in
  let two62 = Q.add top Q.one in
  check string_t "2^62 exact" "4611686018427387904" (Q.to_string two62);
  check bool_t "demotes back under the edge" true
    (Stdlib.compare (Q.sub two62 Q.one) top = 0);
  (* Multiplication overflow: (2^31)^2 = 2^62 needs the fallback. *)
  let p = Q.mul (Q.of_int (1 lsl 31)) (Q.of_int (1 lsl 31)) in
  check string_t "2^31 * 2^31" "4611686018427387904" (Q.to_string p);
  check bool_t "product consistent with addition path" true (Q.equal p two62);
  (* Negative edge: min_int's magnitude is 2^62, one beyond the small
     range, and must not be used as a small component. *)
  let bottom = Q.of_int min_int in
  check string_t "min_int exact" (string_of_int min_int) (Q.to_string bottom);
  same "min_int + min_int"
    (Q.add bottom bottom)
    (bq_add (bq_of_q bottom) (bq_of_q bottom));
  same "min_int * min_int"
    (Q.mul bottom bottom)
    (bq_mul (bq_of_q bottom) (bq_of_q bottom));
  check int_t "compare across the edge" (-1) (Q.compare bottom top);
  (* Denominator overflow: 1/(2^62-1) + 1/(2^62-3) overflows the common
     denominator and must fall back, then stay exact. *)
  let a = Q.of_ints 1 max_int and b = Q.of_ints 1 (max_int - 2) in
  same "tiny sum overflow" (Q.add a b) (bq_add (bq_of_q a) (bq_of_q b));
  (* floor/ceil at the boundary. *)
  check string_t "floor of big" "4611686018427387903"
    (B.to_string (Q.floor (Q.sub two62 (Q.of_ints 1 2))));
  check string_t "ceil of big" "4611686018427387904"
    (B.to_string (Q.ceil (Q.sub two62 (Q.of_ints 1 2))))

let test_rounding_differential () =
  let st = Random.State.make [| 0xf100; 3 |] in
  for _ = 1 to 200 do
    let x = rand_q st in
    let f = Q.of_bigint (Q.floor x) and c = Q.of_bigint (Q.ceil x) in
    check bool_t "floor <= x" true (Q.leq f x);
    check bool_t "x <= ceil" true (Q.leq x c);
    check bool_t "x - floor < 1" true (Q.lt (Q.sub x f) Q.one);
    check bool_t "ceil - x < 1" true (Q.lt (Q.sub c x) Q.one);
    check bool_t "to_string round-trips" true
      (Q.equal x (Q.of_decimal_string (Q.to_string x)))
  done

(* ------------------------------------------------------------------ *)
(* CSR tableau: differential replay.                                    *)

let rand_cons st nvars tag =
  let nterms = 1 + Random.State.int st 3 in
  let terms =
    List.init nterms (fun _ ->
        (Q.of_int (Random.State.int st 11 - 5), Random.State.int st nvars))
  in
  let expr = L.of_list terms (Q.of_int (Random.State.int st 21 - 10)) in
  let op =
    match Random.State.int st 5 with
    | 0 -> L.Le
    | 1 -> L.Ge
    | 2 -> L.Lt
    | 3 -> L.Gt
    | _ -> L.Eq
  in
  { L.expr; op; tag }

let model_env model v =
  match List.assoc_opt v model with Some q -> q | None -> Q.zero

let holds_all cs model =
  List.for_all (fun c -> L.holds (model_env model) c) cs

(* One-shot verdicts agree with an incremental assert-then-check replay
   of the same constraints, and every Sat model exactly satisfies the
   system (checked in exact arithmetic, so a CSR corruption that still
   produces a "plausible" assignment is caught). *)
let test_csr_one_shot_vs_incremental () =
  let st = Random.State.make [| 0xc5a; 17 |] in
  let sat = ref 0 and unsat = ref 0 in
  for i = 1 to 120 do
    let nvars = 2 + Random.State.int st 4 in
    let ncons = 2 + Random.State.int st 8 in
    let cs = List.init ncons (fun t -> rand_cons st nvars t) in
    let one_shot = S.solve_system cs in
    let t = S.create () in
    S.ensure_vars t nvars;
    let rec assert_all = function
      | [] -> (
        match S.check t with
        | S.Feasible -> `Sat
        | S.Infeasible _ -> `Unsat)
      | c :: rest -> (
        if L.is_constant c.L.expr then
          if L.holds (fun _ -> Q.zero) c then assert_all rest else `Unsat
        else
          match S.assert_cons t c with
          | S.Feasible -> assert_all rest
          | S.Infeasible _ -> `Unsat)
    in
    let incremental = assert_all cs in
    (match (one_shot, incremental) with
    | S.Sat model, `Sat ->
      incr sat;
      if not (holds_all cs model) then
        Alcotest.failf "case %d: one-shot model violates the system" i
    | S.Unsat _, `Unsat -> incr unsat
    | S.Unknown _, _ -> Alcotest.failf "case %d: unexpected unknown" i
    | S.Sat _, `Unsat -> Alcotest.failf "case %d: one-shot sat, replay unsat" i
    | S.Unsat _, `Sat -> Alcotest.failf "case %d: one-shot unsat, replay sat" i)
  done;
  check bool_t "exercised both verdicts" true (!sat > 5 && !unsat > 5)

(* Checkpoint/rollback replay: re-asserting a popped frame must
   reproduce the same verdict even though the pivoted basis (and the
   occurrence index behind it) carries over between rounds. *)
let test_csr_warm_replay () =
  let st = Random.State.make [| 0xaa7; 2 |] in
  for _ = 1 to 40 do
    let nvars = 2 + Random.State.int st 4 in
    let base = List.init 4 (fun t -> rand_cons st nvars t) in
    let t = S.create () in
    S.ensure_vars t nvars;
    let base_ok =
      List.for_all
        (fun c ->
          L.is_constant c.L.expr
          || match S.assert_cons t c with S.Feasible -> true | S.Infeasible _ -> false)
        base
    in
    if base_ok && S.check t = S.Feasible then
      for round = 0 to 4 do
        let extra = List.init 3 (fun k -> rand_cons st nvars (100 + (round * 10) + k)) in
        let run () =
          S.push t;
          let v =
            let rec go = function
              | [] -> ( match S.check t with S.Feasible -> `Sat | S.Infeasible _ -> `Unsat)
              | c :: rest -> (
                if L.is_constant c.L.expr then go rest
                else
                  match S.assert_cons t c with
                  | S.Feasible -> go rest
                  | S.Infeasible _ -> `Unsat)
            in
            go extra
          in
          S.pop t;
          v
        in
        let v1 = run () in
        let v2 = run () in
        check bool_t "replay verdict stable" true (v1 = v2)
      done
  done

(* The float filter only changes which pivots are tried, never the
   verdict: drive the same random systems through filtered and
   unfiltered tableaus. *)
let test_csr_float_filter_verdicts () =
  let st = Random.State.make [| 0xff1; 5 |] in
  for i = 1 to 60 do
    let nvars = 2 + Random.State.int st 4 in
    let ncons = 3 + Random.State.int st 6 in
    let cs = List.init ncons (fun t -> rand_cons st nvars t) in
    let run filtered =
      let t = S.create () in
      S.ensure_vars t nvars;
      S.set_float_filter t filtered;
      let rec go = function
        | [] -> ( match S.check t with S.Feasible -> `Sat | S.Infeasible _ -> `Unsat)
        | c :: rest -> (
          if L.is_constant c.L.expr then
            if L.holds (fun _ -> Q.zero) c then go rest else `Unsat
          else
            match S.assert_cons t c with
            | S.Feasible -> go rest
            | S.Infeasible _ -> `Unsat)
      in
      go cs
    in
    if run true <> run false then
      Alcotest.failf "case %d: float filter changed the verdict" i
  done

(* Pivoting with ~2^40-scale coefficients multiplies into > 2^62
   intermediate values: the tableau arithmetic must cross into the
   Bigint fallback and come back out exactly. *)
let test_csr_overflow_fallback () =
  let big = Q.of_int (1 lsl 40) in
  let cs =
    [
      { L.expr = L.of_list [ (big, 0); (Q.of_int 3, 1) ] (Q.neg (Q.of_int (1 lsl 30))); op = L.Ge; tag = 0 };
      { L.expr = L.of_list [ (Q.one, 0) ] (Q.neg (Q.of_ints 1 3)); op = L.Le; tag = 1 };
      { L.expr = L.of_list [ (big, 1); (Q.neg Q.one, 0) ] Q.zero; op = L.Le; tag = 2 };
      { L.expr = L.of_list [ (Q.one, 1) ] Q.zero; op = L.Ge; tag = 3 };
    ]
  in
  match S.solve_system cs with
  | S.Sat model ->
    check bool_t "big-coefficient model is exact" true (holds_all cs model)
  | S.Unsat _ -> Alcotest.fail "expected sat"
  | S.Unknown _ -> Alcotest.fail "unexpected unknown"

let suite =
  [
    Alcotest.test_case "small-rational differential vs bigint reference" `Quick
      test_small_rational_differential;
    Alcotest.test_case "small-rational canonical representation" `Quick
      test_small_rational_canonical;
    Alcotest.test_case "overflow boundaries at +-2^62" `Quick
      test_overflow_boundary;
    Alcotest.test_case "rounding and string round-trips" `Quick
      test_rounding_differential;
    Alcotest.test_case "csr one-shot vs incremental replay" `Quick
      test_csr_one_shot_vs_incremental;
    Alcotest.test_case "csr warm checkpoint replay" `Quick
      test_csr_warm_replay;
    Alcotest.test_case "csr float-filter verdict identity" `Quick
      test_csr_float_filter_verdicts;
    Alcotest.test_case "csr overflow fallback in pivoting" `Quick
      test_csr_overflow_fallback;
  ]
