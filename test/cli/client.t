The session client runs an SMT-LIB 2 script against a socket daemon.

  $ sock="$PWD/daemon.sock"
  $ ../../bin/absolver_cli.exe serve --socket "$sock" > server1.log 2>&1 &
  $ pid1=$!
  $ for i in $(seq 200); do test -S "$sock" && break; sleep 0.05; done
  $ printf '%s\n' \
  >   '(declare-const x Real)' \
  >   '(assert (>= x 2))' \
  >   '(check-sat)' \
  >   '(get-model)' \
  >   | ../../bin/absolver_cli.exe client --socket "$sock"
  sat
  (model (define-fun x () Real 2))

A crashed daemon leaves its socket file behind.  A restarting daemon
probes the stale file, finds nobody listening, removes it and binds;
the client's dial retries ride out the restart window.

  $ kill -9 "$pid1" 2> /dev/null
  $ wait "$pid1" 2> /dev/null || true
  $ test -S "$sock" && echo "stale socket left behind"
  stale socket left behind
  $ ../../bin/absolver_cli.exe serve --socket "$sock" > server2.log 2>&1 &
  $ pid2=$!
  $ printf '(check-sat)\n' | ../../bin/absolver_cli.exe client --socket "$sock"
  sat

A live daemon's socket is never hijacked: a second daemon pointed at
the same path refuses to start and the first keeps serving.

  $ ../../bin/absolver_cli.exe serve --socket "$sock" 2>&1
  serve: $TESTCASE_ROOT/daemon.sock: a live daemon is already serving this socket
  [1]
  $ printf '(check-sat)\n' | ../../bin/absolver_cli.exe client --socket "$sock"
  sat
  $ kill "$pid2" 2> /dev/null
  $ wait "$pid2" 2> /dev/null || true
