The solve server speaks line-delimited JSON over stdin/stdout: one
request object per line, one response per line, ids echoed verbatim.

  $ cat > session.txt <<'END'
  > {"id":1,"op":"solve","format":"dimacs","problem":"p cnf 2 2\n1 0\n2 0\nc def real 1 u <= 1\nc def real 2 u >= 2\n"}
  > {"id":2,"op":"solve","format":"dimacs","problem":"p cnf 1 1\n1 0\nc def int 1 k >= 3\n"}
  > {"id":3,"op":"smt2","script":"(declare-const x Real)(assert (>= x 1)) (assert (<= x 1)) (check-sat) (get-model)"}
  > {"id":4,"op":"exit"}
  > END
  $ ../../bin/absolver_cli.exe serve < session.txt; echo "exit $?"
  {"id":1,"status":"ok","verdict":"unsat"}
  {"id":2,"status":"ok","verdict":"sat","model":"b:1 k=3"}
  {"id":3,"status":"ok","replies":["sat","(model (define-fun x () Real 1))"]}
  {"id":4,"status":"ok","bye":true}
  exit 0

Health and stats carry machine-dependent numbers; mask them.

  $ printf '%s\n' '{"id":1,"op":"health"}' '{"id":2,"op":"exit"}' \
  >   | ../../bin/absolver_cli.exe serve \
  >   | sed -E 's/[0-9]+(\.[0-9]+)?(e-?[0-9]+)?/N/g'
  {"id":N,"status":"ok","health":"ok","accepting":true,"uptime_s":N,"clients":N,"workers":N,"in_flight":N,"queued":N,"workers_live":N,"worker_deaths":N,"worker_restarts":N}
  {"id":N,"status":"ok","bye":true}

A line that is not valid JSON, an unknown op and a missing field are
answered with errors; the session survives all three.

  $ printf '%s\n' '{not valid json' '{"id":7,"op":"nope"}' '{"id":8,"op":"solve"}' '{"id":9,"op":"exit"}' \
  >   | ../../bin/absolver_cli.exe serve
  {"id":null,"status":"error","error":"bad request: expected '\"', got 'n' at 1"}
  {"id":7,"status":"error","error":"unknown op nope"}
  {"id":8,"status":"error","error":"solve: missing problem"}
  {"id":9,"status":"ok","bye":true}

The same daemon speaks raw SMT-LIB 2 when the first byte is not '{'
(framing is auto-detected per connection).

  $ printf '%s\n' \
  >   '(set-logic QF_LRA)' \
  >   '(declare-const p Bool)' \
  >   '(declare-const x Real)' \
  >   '(assert (=> p (> x 2)))' \
  >   '(assert p)' \
  >   '(check-sat)' \
  >   '(get-model)' \
  >   '(this-is-not-a-command)' \
  >   '(check-sat)' \
  >   '(exit)' \
  >   | ../../bin/absolver_cli.exe serve; echo "exit $?"
  sat
  (model (define-fun p () Bool true) (define-fun x () Real (/ 5 2)))
  (error "unsupported command this-is-not-a-command")
  sat
  exit 0
