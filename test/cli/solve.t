The stand-alone executable solves extended-DIMACS problems.

  $ cat > fig2.cnf <<'END'
  > p cnf 4 3
  > 1 0
  > -2 3 0
  > 4 0
  > c def int 1 i >= 0
  > c def int 1 j >= 0
  > c def int 2 2*i + j < 10
  > c def int 3 i + j < 5
  > c def real 4 a * x + 3.5 / ( 4 - y ) + 2 * y >= 7.1
  > c bound a -10 10
  > c bound x -10 10
  > c bound y -10 3.9
  > END
  $ ../../bin/absolver_cli.exe solve fig2.cnf > out.txt; echo "exit $?"
  exit 0
  $ head -1 out.txt
  sat

An unsatisfiable problem exits with status 20 (the usual SAT-solver
convention).

  $ cat > unsat.cnf <<'END'
  > p cnf 2 2
  > 1 0
  > 2 0
  > c def real 1 u <= 1
  > c def real 2 u >= 2
  > END
  $ ../../bin/absolver_cli.exe solve unsat.cnf
  unsat
  [20]

All-models enumeration with a limit.

  $ cat > multi.cnf <<'END'
  > p cnf 2 1
  > 1 2 0
  > c def real 1 u <= 1
  > c def real 2 u >= 2
  > END
  $ ../../bin/absolver_cli.exe solve multi.cnf --all-models | head -1
  2 solution(s)

Telemetry: --trace streams JSONL (first line is the meta object), and
--stats-json writes one JSON object with run stats and telemetry.

  $ ../../bin/absolver_cli.exe solve fig2.cnf --trace trace.jsonl --stats-json stats.json > /dev/null
  $ head -c 48 trace.jsonl
  {"type":"meta","format":"absolver-trace","versio
  $ grep -c '"type":"span"' trace.jsonl > /dev/null && echo has-spans
  has-spans
  $ grep -o '"name":"solve"' trace.jsonl | head -1
  "name":"solve"
  $ grep -o '"run_stats"' stats.json
  "run_stats"
  $ grep -o '"telemetry"' stats.json
  "telemetry"

--stats prints the per-span summary after the verdict.

  $ ../../bin/absolver_cli.exe solve fig2.cnf --stats | grep -c '^span'
  1

Resource limits: a run cut short by --timeout is a graceful outcome,
not an error — unknown verdict, partial statistics, exit status 0.

  $ ../../bin/absolver_cli.exe gen fischer 5 -o fischer.cnf
  wrote fischer.cnf
  $ ../../bin/absolver_cli.exe solve fischer.cnf --timeout 0.01 --stats-json budget.json
  unknown (timeout)
  $ grep -o '"budget_exhausted":"timeout"' budget.json
  "budget_exhausted":"timeout"
  $ grep -o '"run_stats"' budget.json
  "run_stats"

A deterministic work budget (--max-steps) degrades the same way; an
unbudgeted run reports no exhaustion.

  $ ../../bin/absolver_cli.exe solve fischer.cnf --max-steps 1000
  unknown (step budget exhausted)
  $ ../../bin/absolver_cli.exe solve fig2.cnf --stats-json nolimit.json > /dev/null
  $ grep -o '"budget_exhausted":null' nolimit.json
  "budget_exhausted":null

Parallel solving: --jobs N runs branch-and-prune on a domain pool, with
verdicts identical to the sequential solver at every job count, and
--portfolio races the engine against the DPLL(T) baselines.

  $ ../../bin/absolver_cli.exe solve fig2.cnf --jobs 4 | head -1
  sat
  $ ../../bin/absolver_cli.exe solve unsat.cnf -j 2
  unsat
  [20]
The nonlinear constraint in fig2.cnf makes the baselines reject, so the
engine always wins this race; on linear problems any competitor may win,
so only the verdict is checked.

  $ ../../bin/absolver_cli.exe solve fig2.cnf --portfolio > pf.txt; echo "exit $?"
  exit 0
  $ head -1 pf.txt
  sat
  $ grep '^portfolio winner' pf.txt
  portfolio winner: absolver
  $ ../../bin/absolver_cli.exe solve unsat.cnf --portfolio | head -1
  unsat

The circuit renderer emits GraphViz.

  $ ../../bin/absolver_cli.exe circuit fig2.cnf | head -2
  digraph circuit {
    rankdir=LR;

The linear-relaxation layer sits in front of nonlinear branch-and-prune:
LP-infeasible boxes are pruned before interval contraction runs. The
ball-vs-plane problem below is refuted either way; --no-relax disables
the layer (restoring the pure interval search) and zeroes its counters.

  $ cat > ball.cnf <<'END'
  > p cnf 1 1
  > 1 0
  > c def real 1 x * x + y * y <= 1
  > c def real 1 x + y >= 2
  > c bound x -2 2
  > c bound y -2 2
  > END
  $ ../../bin/absolver_cli.exe solve ball.cnf
  unsat
  [20]
  $ ../../bin/absolver_cli.exe solve ball.cnf --no-relax
  unsat
  [20]

--stats reports the relaxation counters next to the branch-and-prune
node counts, and --stats-json carries them as run_stats fields.

  $ ../../bin/absolver_cli.exe solve ball.cnf --stats 2>&1 | grep -o 'relax\[cuts=[0-9]*' | sed 's/=[0-9]*/=N/'
  relax[cuts=N
  $ ../../bin/absolver_cli.exe solve ball.cnf --stats-json ball.json; echo "exit $?"
  unsat
  exit 20
  $ grep -o '"relax_cuts_asserted"' ball.json
  "relax_cuts_asserted"
  $ grep -o '"relax_nodes_pruned"' ball.json
  "relax_nodes_pruned"
  $ grep -o '"relax_bounds_tightened"' ball.json
  "relax_bounds_tightened"

With --no-relax the counters stay at zero.

  $ ../../bin/absolver_cli.exe solve ball.cnf --no-relax --stats-json noball.json
  unsat
  [20]
  $ grep -o '"relax_cuts_asserted":0' noball.json
  "relax_cuts_asserted":0
  $ grep -o '"relax_lp_checks":0' noball.json
  "relax_lp_checks":0
