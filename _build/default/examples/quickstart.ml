(* Quickstart: build an AB-problem through the native API (the paper's
   "ABSOLVER may as well be used as a native library"), solve it, and
   inspect the solution.

   The problem: find a rectangle with perimeter at most 20, area at least
   20, and either a width of at least 6 or a height of at least 6 --
   a Boolean combination of linear and nonlinear constraints. *)

module A = Absolver_core
module Expr = Absolver_nlp.Expr
module Linexpr = Absolver_lp.Linexpr
module Types = Absolver_sat.Types
module Q = Absolver_numeric.Rational

let () =
  let problem = A.Ab_problem.create () in
  let w = A.Ab_problem.intern_arith_var problem "width" in
  let h = A.Ab_problem.intern_arith_var problem "height" in
  A.Ab_problem.set_bounds problem w ~lower:Q.zero ~upper:(Q.of_int 100) ();
  A.Ab_problem.set_bounds problem h ~lower:Q.zero ~upper:(Q.of_int 100) ();
  (* Boolean variable 0: perimeter <= 20 (linear). *)
  A.Ab_problem.define problem ~bool_var:0 ~domain:A.Ab_problem.Dreal
    {
      Expr.expr =
        Expr.sub
          (Expr.mul (Expr.of_int 2) (Expr.add (Expr.var w) (Expr.var h)))
          (Expr.of_int 20);
      op = Linexpr.Le;
      tag = 0;
    };
  (* Boolean variable 1: area >= 20 (nonlinear: product of variables). *)
  A.Ab_problem.define problem ~bool_var:1 ~domain:A.Ab_problem.Dreal
    {
      Expr.expr = Expr.sub (Expr.mul (Expr.var w) (Expr.var h)) (Expr.of_int 20);
      op = Linexpr.Ge;
      tag = 1;
    };
  (* Boolean variables 2 and 3: width >= 6, height >= 6. *)
  A.Ab_problem.define problem ~bool_var:2 ~domain:A.Ab_problem.Dreal
    { Expr.expr = Expr.sub (Expr.var w) (Expr.of_int 6); op = Linexpr.Ge; tag = 2 };
  A.Ab_problem.define problem ~bool_var:3 ~domain:A.Ab_problem.Dreal
    { Expr.expr = Expr.sub (Expr.var h) (Expr.of_int 6); op = Linexpr.Ge; tag = 3 };
  (* CNF: 1 and 2 and (3 or 4) in DIMACS terms. *)
  A.Ab_problem.add_clause problem [ Types.pos 0 ];
  A.Ab_problem.add_clause problem [ Types.pos 1 ];
  A.Ab_problem.add_clause problem [ Types.pos 2; Types.pos 3 ];

  print_endline "Problem in ABSOLVER's input language (Fig. 2 format):";
  print_string (A.Dimacs_ext.to_string problem);
  print_newline ();

  (match A.Engine.solve problem with
  | A.Engine.R_sat solution, stats ->
    Format.printf "Result: sat@.%a@." (A.Solution.pp problem) solution;
    Format.printf "Engine: %a@." A.Engine.pp_run_stats stats;
    (match A.Solution.check problem solution with
    | Ok () -> print_endline "Solution re-verified against the problem."
    | Error e -> print_endline ("VERIFICATION FAILED: " ^ e))
  | A.Engine.R_unsat, _ -> print_endline "Result: unsat (unexpected!)"
  | A.Engine.R_unknown why, _ -> print_endline ("Result: unknown - " ^ why));

  (* The 3-valued circuit view (paper Fig. 5): evaluate under a partial
     assignment. *)
  let circuit = A.Ab_problem.to_circuit problem in
  let value =
    Absolver_circuit.Circuit.eval
      ~bool_env:(fun v ->
        if v = 0 then Absolver_circuit.Tribool.True else Absolver_circuit.Tribool.Unknown)
      ~arith_env:(fun _ -> None)
      circuit
  in
  Format.printf "Circuit output under a partial assignment: %a (size %d gates)@."
    Absolver_circuit.Tribool.pp value
    (Absolver_circuit.Circuit.size circuit)
