(* The SMT-LIB pipeline of paper Sec. 5.2: generate a FISCHER benchmark in
   SMT-LIB 1.2 concrete syntax, parse it back, convert it to ABSOLVER's
   input format, and decide it — for both a reachable (SAT) and an
   unreachable (UNSAT) timing property. *)

module A = Absolver_core
module F = Absolver_smtlib.Fischer
module Q = Absolver_numeric.Rational

let run ~n ~rounds ~property ~label =
  let bench = F.benchmark ~rounds ~property ~n () in
  let text = Absolver_smtlib.Ast.to_string bench in
  Printf.printf "%s: generated %s (%d bytes of SMT-LIB 1.2, declared status %s)\n"
    label bench.Absolver_smtlib.Ast.name (String.length text)
    (match bench.Absolver_smtlib.Ast.status with
    | `Sat -> "sat"
    | `Unsat -> "unsat"
    | `Unknown -> "unknown");
  match Absolver_smtlib.Parser.parse_benchmark text with
  | Error e -> failwith ("parse: " ^ e)
  | Ok parsed -> (
    match Absolver_smtlib.To_ab.convert parsed with
    | Error e -> failwith ("convert: " ^ e)
    | Ok problem ->
      let stats = A.Ab_problem.stats problem in
      Format.printf "  converted: %a@." A.Ab_problem.pp_stats stats;
      let t0 = Unix.gettimeofday () in
      let result, run_stats = A.Engine.solve problem in
      let verdict =
        match result with
        | A.Engine.R_sat sol -> (
          match A.Solution.check problem sol with
          | Ok () -> "sat (witness verified)"
          | Error e -> "sat (BROKEN witness: " ^ e ^ ")")
        | A.Engine.R_unsat -> "unsat"
        | A.Engine.R_unknown w -> "unknown (" ^ w ^ ")"
      in
      Printf.printf "  ABSOLVER: %s in %.3fs (%d Boolean models examined)\n\n"
        verdict
        (Unix.gettimeofday () -. t0)
        run_stats.A.Engine.bool_models;
      (match (result, bench.Absolver_smtlib.Ast.status) with
      | A.Engine.R_sat _, `Sat | A.Engine.R_unsat, `Unsat -> ()
      | _ -> failwith "verdict does not match the declared status!"))

let () =
  (* Process 1 can reach its critical section within 4 time units... *)
  run ~n:3 ~rounds:4 ~property:(F.Cs_within (Q.of_int 4)) ~label:"reachable";
  (* ...but not within 2 (it must wait strictly longer than b = 2). *)
  run ~n:3 ~rounds:4 ~property:(F.Cs_within (Q.of_int 2)) ~label:"too fast";
  (* And mutual exclusion cannot be violated (a < b). *)
  run ~n:2 ~rounds:8 ~property:F.Mutex_violation ~label:"mutex"
