(* Consistency-based diagnosis with ABSOLVER (paper Sec. 4's motivation
   for all-solutions Boolean solvers, after Bauer's LSAT [2]).

   The classic polybox circuit (Davis/Reiter/de Kleer):

        a ──┬─[M1]── x ─┐
        c ──┘           ├─[A1]── f
        b ──┬─[M2]── y ─┘
        d ──┘       y ──┐
        c ──┬─[M3]── z ─├─[A2]── g
        e ──┘           ┘

   Inputs a=3, b=2, c=2, d=3, e=3. Expected outputs f = g = 12; observed
   f = 10, g = 12. Which components can be broken?

   Known answer: the minimal diagnoses are {M1}, {A1}, {M2,M3}, {M2,A2}. *)

module A = Absolver_core
module E = Absolver_nlp.Expr
module L = Absolver_lp.Linexpr
module T = Absolver_sat.Types
module Q = Absolver_numeric.Rational

let () =
  let problem = A.Ab_problem.create () in
  let var name = A.Ab_problem.intern_arith_var problem name in
  let a = var "a" and b = var "b" and c = var "c" and d = var "d" and e = var "e" in
  let x = var "x" and y = var "y" and z = var "z" in
  let f = var "f" and g = var "g" in
  List.iter
    (fun v -> A.Ab_problem.set_bounds problem v ~lower:(Q.of_int (-100)) ~upper:(Q.of_int 100) ())
    [ a; b; c; d; e; x; y; z; f; g ];
  (* Boolean variables 0..4: health of M1 M2 M3 A1 A2 (true = abnormal).
     Variables 5..9: behaviour constraints. *)
  let h_m1 = 0 and h_m2 = 1 and h_m3 = 2 and h_a1 = 3 and h_a2 = 4 in
  let behaviours =
    [
      (5, E.sub (E.var x) (E.mul (E.var a) (E.var c))); (* M1: x = a*c *)
      (6, E.sub (E.var y) (E.mul (E.var b) (E.var d))); (* M2: y = b*d *)
      (7, E.sub (E.var z) (E.mul (E.var c) (E.var e))); (* M3: z = c*e *)
      (8, E.sub (E.var f) (E.add (E.var x) (E.var y))); (* A1: f = x+y *)
      (9, E.sub (E.var g) (E.add (E.var y) (E.var z))); (* A2: g = y+z *)
    ]
  in
  List.iter
    (fun (bv, expr) ->
      A.Ab_problem.define problem ~bool_var:bv ~domain:A.Ab_problem.Dreal
        { E.expr; op = L.Eq; tag = bv })
    behaviours;
  (* Healthy => correct behaviour: (h \/ o). *)
  List.iteri
    (fun i (obv, _) -> A.Ab_problem.add_clause problem [ T.pos (h_m1 + i); T.pos obv ])
    behaviours;
  ignore (h_m2, h_m3, h_a1, h_a2);
  (* Observations as definitional equalities asserted true. *)
  let observe v value bv =
    A.Ab_problem.define problem ~bool_var:bv ~domain:A.Ab_problem.Dreal
      { E.expr = E.sub (E.var v) (E.of_int value); op = L.Eq; tag = bv };
    A.Ab_problem.add_clause problem [ T.pos bv ]
  in
  observe a 3 10;
  observe b 2 11;
  observe c 2 12;
  observe d 3 13;
  observe e 3 14;
  observe f 10 15;
  observe g 12 16;
  (* Diagnose. *)
  let health_vars = [ h_m1; h_m2; h_m3; h_a1; h_a2 ] in
  let names = [ "M1"; "M2"; "M3"; "A1"; "A2" ] in
  Printf.printf "Observed f = 10 (expected 12), g = 12.\n";
  Printf.printf "All-healthy consistent: %b\n\n"
    (A.Diagnosis.healthy_consistent ~health_vars problem);
  match A.Diagnosis.diagnoses ~health_vars problem with
  | Error err -> print_endline ("diagnosis failed: " ^ err)
  | Ok ds ->
    Printf.printf "%d minimal diagnosis(es):\n" (List.length ds);
    List.iter
      (fun (diag : A.Diagnosis.t) ->
        let comps = List.map (fun h -> List.nth names h) diag.A.Diagnosis.abnormal in
        Printf.printf "  { %s }\n" (String.concat ", " comps);
        (* Show the faulty component's actual value in the witness. *)
        let sv v = A.Solution.float_env diag.A.Diagnosis.witness ~default:Float.nan v in
        Printf.printf "    scenario: x=%g y=%g z=%g\n" (sv x) (sv y) (sv z))
      ds
