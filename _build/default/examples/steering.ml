(* The industrial case study of paper Sec. 3: safety analysis of a car's
   steering control system.

   The pipeline mirrors Fig. 3: Simulink-like model -> LUSTRE-like node ->
   AB-problem -> ABSOLVER.  A SAT answer is a counterexample scenario:
   concrete sensor values under which the controller's commanded
   correction violates its requirements. *)

module A = Absolver_core
module M = Absolver_model
module BP = Absolver_nlp.Branch_prune

let () =
  let diagram = M.Steering.diagram () in
  Printf.printf "Model: %d blocks\n" (M.Diagram.num_blocks diagram);
  let node = M.Steering.lustre_node () in
  Printf.printf "LUSTRE form: %d equations, %d inputs\n"
    (List.length node.M.Lustre.equations)
    (List.length node.M.Lustre.inputs);
  let problem = M.Steering.problem () in
  let stats = A.Ab_problem.stats problem in
  Format.printf "Converted: %a (defined variables: %d)@." A.Ab_problem.pp_stats
    stats
    (List.length (A.Ab_problem.defined_vars problem));
  assert (stats.A.Ab_problem.n_clauses = M.Steering.target_clauses);
  (* The registry tuned for this model: zChaff-like Boolean enumeration
     would also work; the nonlinear solver gets a multistart-heavy
     configuration (the role IPOPT played in the paper). *)
  let registry =
    {
      A.Registry.default with
      A.Registry.nonlinear =
        [
          A.Registry.branch_prune_solver
            ~config:
              {
                BP.default_config with
                BP.max_nodes = 600;
                samples_per_node = 2;
                root_samples = 2048;
              }
            ();
        ];
    }
  in
  let t0 = Unix.gettimeofday () in
  match A.Engine.solve ~registry problem with
  | A.Engine.R_sat solution, stats ->
    Printf.printf "Counterexample found in %.1fs (paper: 58.3s on a 2007 notebook)\n"
      (Unix.gettimeofday () -. t0);
    Format.printf "Engine: %a@." A.Engine.pp_run_stats stats;
    print_endline "Scenario (sensor values):";
    List.iter
      (fun name ->
        match A.Ab_problem.arith_var_index problem name with
        | Some v ->
          let x = A.Solution.float_env solution ~default:0.0 v in
          Printf.printf "  %-6s = %10.4f\n" name x
        | None -> ())
      [ "yaw"; "a_lat"; "v_fl"; "v_fr"; "v_rl"; "v_rr"; "delta" ];
    (match A.Solution.check problem solution with
    | Ok () -> print_endline "Counterexample re-verified against the model."
    | Error e -> print_endline ("VERIFICATION FAILED: " ^ e))
  | A.Engine.R_unsat, _ ->
    print_endline "Property holds over the modelled input ranges (unexpected)."
  | A.Engine.R_unknown why, _ -> print_endline ("Analysis incomplete: " ^ why)
