examples/steering.ml: Absolver_core Absolver_model Absolver_nlp Format List Printf Unix
