examples/sudoku_demo.mli:
