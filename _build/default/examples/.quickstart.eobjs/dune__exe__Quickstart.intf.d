examples/quickstart.mli:
