examples/diagnosis_demo.ml: Absolver_core Absolver_lp Absolver_nlp Absolver_numeric Absolver_sat Float List Printf String
