examples/sudoku_demo.ml: Absolver_core Absolver_encodings Array Format List Option Printf Unix
