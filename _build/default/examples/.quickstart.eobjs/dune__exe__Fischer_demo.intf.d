examples/fischer_demo.mli:
