examples/simulink_fig1.mli:
