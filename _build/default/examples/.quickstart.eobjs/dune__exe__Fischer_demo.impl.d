examples/fischer_demo.ml: Absolver_core Absolver_numeric Absolver_smtlib Format Printf String Unix
