examples/steering.mli:
