(* The paper's running example: the MATLAB/Simulink model of Fig. 1 and
   its extended-DIMACS rendering of Fig. 2.

   The model: inputs a, x, y, i, j; comparisons (i >= 0), (j >= 0),
   (2i + j < 10), (i + j < 5), (a*x + 3.5/(4-y) + 2y >= 7.1); logic
   AND/OR/NOT combining them into a single Boolean output.

   This example (1) builds the diagram programmatically, (2) runs the
   Fig. 3 conversion chain through the LUSTRE-like intermediate form,
   (3) parses the verbatim Fig. 2 text and checks both routes agree, and
   (4) solves the problem. *)

module A = Absolver_core
module M = Absolver_model
module Q = Absolver_numeric.Rational

let fig2_text =
  {|p cnf 4 3
1 0
-2 3 0
4 0
c def int 1 i >= 0
c def int 1 j >= 0
c def int 2 2*i + j < 10
c def int 3 i + j < 5
c def real 4 a * x + 3.5 / ( 4 - y ) + 2 * y >= 7.1
c bound a -100 100
c bound x -100 100
c bound y -100 100
c bound i -100 100
c bound j -100 100
|}

let build_fig1_diagram () =
  let d = M.Diagram.create () in
  let add = M.Diagram.add_block d in
  let wire src dst port = M.Diagram.connect d ~src ~dst ~port in
  let q s = Q.of_decimal_string s in
  let inport name =
    add (M.Block.B_inport { name; lo = Some (q "-100"); hi = Some (q "100"); integer = name = "i" || name = "j" })
  in
  let a = inport "a" and x = inport "x" and y = inport "y" in
  let i = inport "i" and j = inport "j" in
  (* (i >= 0) and (j >= 0) *)
  let i_nonneg = add (M.Block.B_compare (M.Block.C_ge, q "0")) in
  wire i i_nonneg 0;
  let j_nonneg = add (M.Block.B_compare (M.Block.C_ge, q "0")) in
  wire j j_nonneg 0;
  let both_nonneg = add (M.Block.B_and 2) in
  wire i_nonneg both_nonneg 0;
  wire j_nonneg both_nonneg 1;
  (* not (2i + j < 10) or (i + j < 5) *)
  let two_i = add (M.Block.B_gain (q "2")) in
  wire i two_i 0;
  let lhs1 = add M.Block.B_add in
  wire two_i lhs1 0;
  wire j lhs1 1;
  let c1 = add (M.Block.B_compare (M.Block.C_lt, q "10")) in
  wire lhs1 c1 0;
  let not_c1 = add M.Block.B_not in
  wire c1 not_c1 0;
  let lhs2 = add M.Block.B_add in
  wire i lhs2 0;
  wire j lhs2 1;
  let c2 = add (M.Block.B_compare (M.Block.C_lt, q "5")) in
  wire lhs2 c2 0;
  let disj = add (M.Block.B_or 2) in
  wire not_c1 disj 0;
  wire c2 disj 1;
  (* a*x + 3.5/(4 - y) + 2y >= 7.1 *)
  let ax = add M.Block.B_mul in
  wire a ax 0;
  wire x ax 1;
  let four = add (M.Block.B_const (q "4")) in
  let four_minus_y = add M.Block.B_sub in
  wire four four_minus_y 0;
  wire y four_minus_y 1;
  let c35 = add (M.Block.B_const (q "3.5")) in
  let frac = add M.Block.B_div in
  wire c35 frac 0;
  wire four_minus_y frac 1;
  let two_y = add (M.Block.B_gain (q "2")) in
  wire y two_y 0;
  let total = add (M.Block.B_sum 3) in
  wire ax total 0;
  wire frac total 1;
  wire two_y total 2;
  let c3 = add (M.Block.B_compare (M.Block.C_ge, q "7.1")) in
  wire total c3 0;
  (* Final conjunction and outport. *)
  let out_and = add (M.Block.B_and 3) in
  wire both_nonneg out_and 0;
  wire disj out_and 1;
  wire c3 out_and 2;
  let out = add (M.Block.B_outport "Out1") in
  wire out_and out 0;
  d

let () =
  (* Route 1: diagram -> LUSTRE -> AB-problem. *)
  let diagram = build_fig1_diagram () in
  let node =
    match M.Lustre.of_diagram ~name:"fig1" diagram with
    | Ok n -> n
    | Error e -> failwith e
  in
  print_endline "LUSTRE-like intermediate form (conversion step of Fig. 3):";
  print_string (M.Lustre.to_string node);
  print_newline ();
  let from_model =
    match M.Convert.node_to_ab ~goal:`Find_witness ~output:"Out1" node with
    | Ok p -> p
    | Error e -> failwith e
  in
  (* Route 2: the verbatim Fig. 2 text. *)
  let from_text =
    match A.Dimacs_ext.parse_string fig2_text with
    | Ok p -> p
    | Error e -> failwith e
  in
  let s1 = A.Ab_problem.stats from_model and s2 = A.Ab_problem.stats from_text in
  Format.printf "model route:  %a@." A.Ab_problem.pp_stats s1;
  Format.printf "Fig. 2 text:  %a@." A.Ab_problem.pp_stats s2;
  assert (s1.A.Ab_problem.n_linear = s2.A.Ab_problem.n_linear);
  assert (s1.A.Ab_problem.n_nonlinear = s2.A.Ab_problem.n_nonlinear);
  (* Solve both; they must agree. *)
  let solve name problem =
    match A.Engine.solve problem with
    | A.Engine.R_sat sol, _ ->
      (match A.Solution.check problem sol with
      | Ok () -> Format.printf "%s: sat (verified)@.%a@." name (A.Solution.pp problem) sol
      | Error e -> Format.printf "%s: sat but BROKEN: %s@." name e);
      `Sat
    | A.Engine.R_unsat, _ ->
      Format.printf "%s: unsat@." name;
      `Unsat
    | A.Engine.R_unknown w, _ ->
      Format.printf "%s: unknown (%s)@." name w;
      `Unknown
  in
  let r1 = solve "model route" from_model in
  let r2 = solve "Fig. 2 text" from_text in
  assert (r1 = r2);
  print_endline "both conversion routes agree."
