(* Sudoku as a mixed Boolean/integer-linear problem (paper Sec. 5.3):
   solve a Table 3 instance with the LSAT + linear-solver combination,
   then demonstrate the all-models mode on an under-constrained puzzle
   (the consistency-based-diagnosis use case of LSAT). *)

module A = Absolver_core
module S = Absolver_encodings.Sudoku
module P = Absolver_encodings.Puzzles

let () =
  let name = "2006_05_23_hard" in
  let puzzle = Option.get (P.find name) in
  Format.printf "Puzzle %s:@.%a@.@." name S.pp puzzle;
  let problem = S.absolver_problem puzzle in
  let stats = A.Ab_problem.stats problem in
  Format.printf "Encoding: %a@." A.Ab_problem.pp_stats stats;
  let t0 = Unix.gettimeofday () in
  (match A.Engine.solve problem with
  | A.Engine.R_sat solution, _ ->
    let grid = S.decode problem solution in
    Format.printf "Solved in %.3fs:@.%a@." (Unix.gettimeofday () -. t0) S.pp grid;
    assert (S.is_complete_and_valid grid);
    assert (S.respects_clues ~clues:puzzle grid);
    print_endline "(verified: complete, valid, respects all clues)"
  | A.Engine.R_unsat, _ -> print_endline "unsat?!"
  | A.Engine.R_unknown w, _ -> print_endline ("unknown: " ^ w));
  (* All-models mode: remove most clues and count completions — the
     "compute all models" capability the paper credits LSAT with. *)
  print_newline ();
  let sparse = P.generate ~name:"demo-sparse" ~clues:70 in
  (* Blank out one full row to open up alternatives. *)
  let sparse = Array.map Array.copy sparse in
  for c = 0 to 8 do
    sparse.(4).(c) <- 0
  done;
  let sparse_problem = S.absolver_problem sparse in
  match A.Engine.all_models ~limit:50 sparse_problem with
  | Ok (models, stats) ->
    Printf.printf "Under-constrained variant: %d completion(s) found%s\n"
      (List.length models)
      (if List.length models >= 50 then " (enumeration capped at 50)" else "");
    Format.printf "Engine: %a@." A.Engine.pp_run_stats stats;
    List.iteri
      (fun i sol ->
        if i < 2 then begin
          let g = S.decode sparse_problem sol in
          assert (S.is_complete_and_valid g);
          Format.printf "completion %d:@.%a@." (i + 1) S.pp g
        end)
      models
  | Error e -> print_endline ("enumeration failed: " ^ e)
