  $ cat > fig2.cnf <<'END'
  > p cnf 4 3
  > 1 0
  > -2 3 0
  > 4 0
  > c def int 1 i >= 0
  > c def int 1 j >= 0
  > c def int 2 2*i + j < 10
  > c def int 3 i + j < 5
  > c def real 4 a * x + 3.5 / ( 4 - y ) + 2 * y >= 7.1
  > c bound a -10 10
  > c bound x -10 10
  > c bound y -10 3.9
  > END
  $ ../../bin/absolver_cli.exe solve fig2.cnf > out.txt; echo "exit $?"
  $ head -1 out.txt
  $ cat > unsat.cnf <<'END'
  > p cnf 2 2
  > 1 0
  > 2 0
  > c def real 1 u <= 1
  > c def real 2 u >= 2
  > END
  $ ../../bin/absolver_cli.exe solve unsat.cnf
  $ cat > multi.cnf <<'END'
  > p cnf 2 1
  > 1 2 0
  > c def real 1 u <= 1
  > c def real 2 u >= 2
  > END
  $ ../../bin/absolver_cli.exe solve multi.cnf --all-models | head -1
  $ ../../bin/absolver_cli.exe circuit fig2.cnf | head -2
