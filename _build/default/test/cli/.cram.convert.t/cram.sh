  $ cat > gate.mdl <<'END'
  > model gate
  > block 0 Inport temp -40 125
  > block 1 Inport limit 0 100
  > block 2 Relop >
  > block 3 Outport alarm
  > wire 0 2 0
  > wire 1 2 1
  > wire 2 3 0
  > END
  $ ../../bin/absolver_cli.exe convert gate.mdl --lustre
  $ ../../bin/absolver_cli.exe convert gate.mdl -o problem.cnf
  $ ../../bin/absolver_cli.exe solve problem.cnf > result.txt; echo "exit $?"
  $ head -1 result.txt
  $ ../../bin/absolver_cli.exe gen fischer 2 --rounds 3 -o f2.cnf
  $ ../../bin/absolver_cli.exe solve f2.cnf > f2.txt; echo "exit $?"
  $ ../../bin/absolver_cli.exe gen sudoku 2006_05_23_hard -o s.cnf
  $ ../../bin/absolver_cli.exe solve s.cnf > s.txt; echo "exit $?"
  $ head -1 s.txt
