The Fig. 3 conversion work-flow from a textual Simulink-like model.

  $ cat > gate.mdl <<'END'
  > model gate
  > block 0 Inport temp -40 125
  > block 1 Inport limit 0 100
  > block 2 Relop >
  > block 3 Outport alarm
  > wire 0 2 0
  > wire 1 2 1
  > wire 2 3 0
  > END
  $ ../../bin/absolver_cli.exe convert gate.mdl --lustre
  node gate (temp : real; limit : real)
  returns (alarm : bool);
  var
    sig_2 : bool;
  let
    sig_2 = (temp > limit);
    alarm = sig_2;
  tel
  $ ../../bin/absolver_cli.exe convert gate.mdl -o problem.cnf
  wrote problem.cnf
  $ ../../bin/absolver_cli.exe solve problem.cnf > result.txt; echo "exit $?"
  exit 0
  $ head -1 result.txt
  sat

Generators produce ready-to-solve instances.

  $ ../../bin/absolver_cli.exe gen fischer 2 --rounds 3 -o f2.cnf
  wrote f2.cnf
  $ ../../bin/absolver_cli.exe solve f2.cnf > f2.txt; echo "exit $?"
  exit 0
  $ ../../bin/absolver_cli.exe gen sudoku 2006_05_23_hard -o s.cnf
  wrote s.cnf
  $ ../../bin/absolver_cli.exe solve s.cnf > s.txt; echo "exit $?"
  exit 0
  $ head -1 s.txt
  sat
