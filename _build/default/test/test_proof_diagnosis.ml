(* Tests for the proof-trace checker and the diagnosis engine. *)

module T = Absolver_sat.Types
module C = Absolver_sat.Cdcl
module Pf = Absolver_sat.Proof
module A = Absolver_core
module E = Absolver_nlp.Expr
module L = Absolver_lp.Linexpr
module Q = Absolver_numeric.Rational

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let pigeonhole pigeons holes =
  let v p h = (p * holes) + h in
  List.init pigeons (fun p -> List.init holes (fun h -> T.pos (v p h)))
  @ List.concat_map
      (fun h ->
        let rec pairs = function
          | [] -> []
          | p :: rest ->
            List.map (fun p' -> [ T.neg_of_var (v p h); T.neg_of_var (v p' h) ]) rest
            @ pairs rest
        in
        pairs (List.init pigeons Fun.id))
      (List.init holes Fun.id)

let solve_with_proof n clauses =
  let s = C.create () in
  C.ensure_vars s n;
  let cell = Pf.record s in
  List.iter (C.add_clause s) clauses;
  let r = C.solve s in
  (r, !cell)

let test_proof_php32 () =
  let clauses = pigeonhole 3 2 in
  let r, trace = solve_with_proof 6 clauses in
  check bool_t "unsat" true (r = T.Unsat);
  check bool_t "trace nonempty" true (trace <> []);
  match Pf.check ~num_vars:6 clauses trace with
  | Pf.Valid_unsat -> ()
  | v -> Alcotest.failf "%s" (Format.asprintf "%a" Pf.pp_verdict v)

let test_proof_php43 () =
  let clauses = pigeonhole 4 3 in
  let r, trace = solve_with_proof 12 clauses in
  check bool_t "unsat" true (r = T.Unsat);
  match Pf.check ~num_vars:12 clauses trace with
  | Pf.Valid_unsat -> ()
  | v -> Alcotest.failf "%s" (Format.asprintf "%a" Pf.pp_verdict v)

let test_proof_detects_corruption () =
  (* A satisfiable formula entails neither a unit over a fresh variable
     nor the empty clause: both corruptions must be caught. *)
  let clauses = [ [ T.pos 0; T.pos 1 ]; [ T.neg_of_var 0 ] ] in
  (match Pf.check ~num_vars:3 clauses [ [ T.pos 2 ] ] with
  | Pf.Invalid 0 -> ()
  | v ->
    Alcotest.failf "bogus unit: expected Invalid 0, got %s"
      (Format.asprintf "%a" Pf.pp_verdict v));
  match Pf.check ~num_vars:3 clauses [ [] ] with
  | Pf.Invalid 0 -> ()
  | v ->
    Alcotest.failf "bogus empty clause: expected Invalid 0, got %s"
      (Format.asprintf "%a" Pf.pp_verdict v)

let test_proof_random_unsat () =
  let st = Random.State.make [| 31337 |] in
  let verified = ref 0 in
  for _ = 1 to 60 do
    let n = 4 + Random.State.int st 6 in
    let m = int_of_float (5.5 *. float_of_int n) in
    let clauses =
      List.init m (fun _ ->
          List.init 3 (fun _ ->
              let v = Random.State.int st n in
              if Random.State.bool st then T.pos v else T.neg_of_var v))
    in
    let r, trace = solve_with_proof n clauses in
    if r = T.Unsat then begin
      incr verified;
      match Pf.check ~num_vars:n clauses trace with
      | Pf.Valid_unsat -> ()
      | v ->
        Alcotest.failf "random unsat proof failed: %s"
          (Format.asprintf "%a" Pf.pp_verdict v)
    end
  done;
  check bool_t "some unsat instances seen" true (!verified > 5)

let test_proof_partial_on_sat () =
  let clauses = [ [ T.pos 0; T.pos 1 ]; [ T.neg_of_var 0; T.pos 1 ] ] in
  let r, trace = solve_with_proof 2 clauses in
  check bool_t "sat" true (r = T.Sat);
  match Pf.check ~num_vars:2 clauses trace with
  | Pf.Valid_partial | Pf.Valid_unsat -> ()
  | Pf.Invalid i -> Alcotest.failf "invalid at %d" i

(* ------------------------------------------------------------------ *)
(* Diagnosis.                                                          *)

(* The polybox circuit with the classic observation f=10, g=12. *)
let polybox () =
  let problem = A.Ab_problem.create () in
  let var name = A.Ab_problem.intern_arith_var problem name in
  let a = var "a" and b = var "b" and c = var "c" and d = var "d" and e = var "e" in
  let x = var "x" and y = var "y" and z = var "z" in
  let f = var "f" and g = var "g" in
  List.iter
    (fun v ->
      A.Ab_problem.set_bounds problem v ~lower:(Q.of_int (-100)) ~upper:(Q.of_int 100) ())
    [ a; b; c; d; e; x; y; z; f; g ];
  let behaviours =
    [
      (5, E.sub (E.var x) (E.mul (E.var a) (E.var c)));
      (6, E.sub (E.var y) (E.mul (E.var b) (E.var d)));
      (7, E.sub (E.var z) (E.mul (E.var c) (E.var e)));
      (8, E.sub (E.var f) (E.add (E.var x) (E.var y)));
      (9, E.sub (E.var g) (E.add (E.var y) (E.var z)));
    ]
  in
  List.iteri
    (fun i (bv, expr) ->
      A.Ab_problem.define problem ~bool_var:bv ~domain:A.Ab_problem.Dreal
        { E.expr; op = L.Eq; tag = bv };
      A.Ab_problem.add_clause problem [ T.pos i; T.pos bv ])
    behaviours;
  let observe v value bv =
    A.Ab_problem.define problem ~bool_var:bv ~domain:A.Ab_problem.Dreal
      { E.expr = E.sub (E.var v) (E.of_int value); op = L.Eq; tag = bv };
    A.Ab_problem.add_clause problem [ T.pos bv ]
  in
  observe a 3 10;
  observe b 2 11;
  observe c 2 12;
  observe d 3 13;
  observe e 3 14;
  observe f 10 15;
  observe g 12 16;
  problem

let test_polybox_diagnoses () =
  let problem = polybox () in
  match A.Diagnosis.diagnoses ~health_vars:[ 0; 1; 2; 3; 4 ] problem with
  | Error e -> Alcotest.fail e
  | Ok ds ->
    let sets = List.map (fun d -> List.sort compare d.A.Diagnosis.abnormal) ds in
    (* M1=0 M2=1 M3=2 A1=3 A2=4: expect {0}, {3}, {1,2}, {1,4}. *)
    let expected = [ [ 0 ]; [ 3 ]; [ 1; 2 ]; [ 1; 4 ] ] in
    check int_t "four diagnoses" 4 (List.length sets);
    List.iter
      (fun s ->
        if not (List.mem s sets) then
          Alcotest.failf "missing diagnosis {%s}"
            (String.concat "," (List.map string_of_int s)))
      expected;
    check bool_t "not healthy" false
      (A.Diagnosis.healthy_consistent ~health_vars:[ 0; 1; 2; 3; 4 ] problem)

let test_diagnosis_healthy_when_consistent () =
  (* A single component whose observation matches: empty diagnosis. *)
  let problem = A.Ab_problem.create () in
  let u = A.Ab_problem.intern_arith_var problem "u" in
  let w = A.Ab_problem.intern_arith_var problem "w" in
  A.Ab_problem.set_bounds problem u ~lower:Q.zero ~upper:(Q.of_int 10) ();
  A.Ab_problem.set_bounds problem w ~lower:Q.zero ~upper:(Q.of_int 10) ();
  (* component: w = 2u; observations u = 2, w = 4. *)
  A.Ab_problem.define problem ~bool_var:1 ~domain:A.Ab_problem.Dreal
    { E.expr = E.sub (E.var w) (E.mul (E.of_int 2) (E.var u)); op = L.Eq; tag = 1 };
  A.Ab_problem.add_clause problem [ T.pos 0; T.pos 1 ];
  A.Ab_problem.define problem ~bool_var:2 ~domain:A.Ab_problem.Dreal
    { E.expr = E.sub (E.var u) (E.of_int 2); op = L.Eq; tag = 2 };
  A.Ab_problem.add_clause problem [ T.pos 2 ];
  A.Ab_problem.define problem ~bool_var:3 ~domain:A.Ab_problem.Dreal
    { E.expr = E.sub (E.var w) (E.of_int 4); op = L.Eq; tag = 3 };
  A.Ab_problem.add_clause problem [ T.pos 3 ];
  check bool_t "healthy consistent" true
    (A.Diagnosis.healthy_consistent ~health_vars:[ 0 ] problem);
  match A.Diagnosis.diagnoses ~health_vars:[ 0 ] problem with
  | Ok ({ A.Diagnosis.abnormal = []; _ } :: _) -> ()
  | Ok _ -> Alcotest.fail "expected the empty diagnosis first"
  | Error e -> Alcotest.fail e

let test_diagnosis_witnesses_verify () =
  let problem = polybox () in
  match A.Diagnosis.diagnoses ~health_vars:[ 0; 1; 2; 3; 4 ] problem with
  | Error e -> Alcotest.fail e
  | Ok ds ->
    List.iter
      (fun (d : A.Diagnosis.t) ->
        match A.Solution.check problem d.A.Diagnosis.witness with
        | Ok () -> ()
        | Error e -> Alcotest.failf "witness fails: %s" e)
      ds

let suite =
  [
    ("proof php(3,2)", `Quick, test_proof_php32);
    ("proof php(4,3)", `Quick, test_proof_php43);
    ("proof rejects corruption", `Quick, test_proof_detects_corruption);
    ("proof random unsat", `Quick, test_proof_random_unsat);
    ("proof partial on sat", `Quick, test_proof_partial_on_sat);
    ("polybox diagnoses", `Quick, test_polybox_diagnoses);
    ("healthy system", `Quick, test_diagnosis_healthy_when_consistent);
    ("diagnosis witnesses verify", `Quick, test_diagnosis_witnesses_verify);
  ]
