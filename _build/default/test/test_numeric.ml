(* Unit and property tests for the numeric substrate: Bigint, Rational,
   Delta_rational, Float_ops, Interval. *)

module B = Absolver_numeric.Bigint
module Q = Absolver_numeric.Rational
module DR = Absolver_numeric.Delta_rational
module F = Absolver_numeric.Float_ops
module I = Absolver_numeric.Interval

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Bigint units.                                                       *)

let test_bigint_basics () =
  check string_t "zero" "0" (B.to_string B.zero);
  check string_t "of_int" "42" (B.to_string (B.of_int 42));
  check string_t "negative" "-17" (B.to_string (B.of_int (-17)));
  check bool_t "is_zero" true (B.is_zero B.zero);
  check bool_t "is_one" true (B.is_one B.one);
  check int_t "sign pos" 1 (B.sign (B.of_int 5));
  check int_t "sign neg" (-1) (B.sign (B.of_int (-5)));
  check int_t "sign zero" 0 (B.sign B.zero)

let test_bigint_min_int () =
  let m = B.of_int min_int in
  check string_t "min_int" (string_of_int min_int) (B.to_string m);
  check bool_t "negate min_int" true
    (B.equal (B.neg m) (B.of_string (String.sub (string_of_int min_int) 1 (String.length (string_of_int min_int) - 1))))

let test_bigint_string_roundtrip () =
  List.iter
    (fun s -> check string_t s s (B.to_string (B.of_string s)))
    [
      "0"; "1"; "-1"; "999999999"; "1000000000"; "123456789012345678901234567890";
      "-340282366920938463463374607431768211456";
    ]

let test_bigint_string_underscores () =
  check string_t "underscores" "1000000" (B.to_string (B.of_string "1_000_000"))

let test_bigint_string_invalid () =
  List.iter
    (fun s ->
      match B.of_string_opt s with
      | None -> ()
      | Some _ -> Alcotest.failf "accepted %S" s)
    [ ""; "-"; "+"; "12a"; "1.5"; " 42" ]

let test_bigint_arith () =
  let a = B.of_string "123456789123456789123456789" in
  let b = B.of_string "987654321987654321" in
  check string_t "add" "123456790111111111111111110" (B.to_string (B.add a b));
  check string_t "sub" "123456788135802467135802468" (B.to_string (B.sub a b));
  check string_t "mul small" "121932631356500531469135800347203169112635269"
    (B.to_string (B.mul a b));
  let q, r = B.divmod a b in
  check bool_t "divmod identity" true (B.equal a (B.add (B.mul q b) r))

let test_bigint_div_signs () =
  (* Truncated division: remainder has the dividend's sign. *)
  let cases = [ (7, 3); (-7, 3); (7, -3); (-7, -3) ] in
  List.iter
    (fun (x, y) ->
      let q, r = B.divmod (B.of_int x) (B.of_int y) in
      check int_t (Printf.sprintf "%d / %d" x y) (x / y) (B.to_int q);
      check int_t (Printf.sprintf "%d mod %d" x y) (x mod y) (B.to_int r))
    cases

let test_bigint_div_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_bigint_gcd () =
  check int_t "gcd" 6 (B.to_int (B.gcd (B.of_int 54) (B.of_int 24)));
  check int_t "gcd neg" 6 (B.to_int (B.gcd (B.of_int (-54)) (B.of_int 24)));
  check int_t "gcd zero" 7 (B.to_int (B.gcd B.zero (B.of_int 7)));
  check bool_t "gcd both zero" true (B.is_zero (B.gcd B.zero B.zero))

let test_bigint_pow () =
  check string_t "2^100" "1267650600228229401496703205376"
    (B.to_string (B.pow B.two 100));
  check int_t "x^0" 1 (B.to_int (B.pow (B.of_int 99) 0));
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Bigint.pow: negative exponent") (fun () ->
      ignore (B.pow B.two (-1)))

let test_bigint_shift () =
  check int_t "shift" 40 (B.to_int (B.shift_left (B.of_int 5) 3));
  check string_t "shift big" (B.to_string (B.pow B.two 100))
    (B.to_string (B.shift_left B.one 100))

let test_bigint_to_int () =
  check bool_t "overflow detected" true
    (B.to_int_opt (B.of_string "99999999999999999999999999") = None);
  check bool_t "max_int fits" true (B.to_int_opt (B.of_int max_int) = Some max_int)

let test_bigint_num_bits () =
  check int_t "bits 0" 0 (B.num_bits B.zero);
  check int_t "bits 1" 1 (B.num_bits B.one);
  check int_t "bits 255" 8 (B.num_bits (B.of_int 255));
  check int_t "bits 256" 9 (B.num_bits (B.of_int 256));
  check int_t "bits 2^100" 101 (B.num_bits (B.pow B.two 100))

(* Bigint properties. *)

let arb_bigint =
  QCheck.map
    (fun (n, shift, low) ->
      B.add (B.shift_left (B.of_int n) (abs shift mod 80)) (B.of_int low))
    QCheck.(triple int small_int int)

let prop_add_commutative =
  QCheck.Test.make ~name:"bigint add commutative" ~count:500
    (QCheck.pair arb_bigint arb_bigint)
    (fun (a, b) -> B.equal (B.add a b) (B.add b a))

let prop_mul_distributes =
  QCheck.Test.make ~name:"bigint mul distributes over add" ~count:500
    (QCheck.triple arb_bigint arb_bigint arb_bigint)
    (fun (a, b, c) ->
      B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let prop_divmod_identity =
  QCheck.Test.make ~name:"bigint divmod identity" ~count:1000
    (QCheck.pair arb_bigint arb_bigint)
    (fun (a, b) ->
      QCheck.assume (not (B.is_zero b));
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r)
      && B.compare (B.abs r) (B.abs b) < 0
      && (B.is_zero r || B.sign r = B.sign a))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"bigint string roundtrip" ~count:500 arb_bigint
    (fun a -> B.equal a (B.of_string (B.to_string a)))

let prop_compare_consistent =
  QCheck.Test.make ~name:"bigint compare antisymmetric" ~count:500
    (QCheck.pair arb_bigint arb_bigint)
    (fun (a, b) -> B.compare a b = -B.compare b a)

(* ------------------------------------------------------------------ *)
(* Rational.                                                           *)

let test_rational_normalization () =
  check bool_t "6/4 = 3/2" true (Q.equal (Q.of_ints 6 4) (Q.of_ints 3 2));
  check bool_t "neg den" true (Q.equal (Q.of_ints 1 (-2)) (Q.of_ints (-1) 2));
  check string_t "to_string" "-1/2" (Q.to_string (Q.of_ints 1 (-2)));
  check string_t "integer" "5" (Q.to_string (Q.of_ints 10 2))

let test_rational_arith () =
  let third = Q.of_ints 1 3 and half = Q.of_ints 1 2 in
  check bool_t "1/3+1/2" true (Q.equal (Q.add third half) (Q.of_ints 5 6));
  check bool_t "1/3*1/2" true (Q.equal (Q.mul third half) (Q.of_ints 1 6));
  check bool_t "1/3/(1/2)" true (Q.equal (Q.div third half) (Q.of_ints 2 3));
  check bool_t "inv" true (Q.equal (Q.inv third) (Q.of_int 3));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Q.inv Q.zero))

let test_rational_decimal_strings () =
  List.iter
    (fun (s, n, d) ->
      check bool_t s true (Q.equal (Q.of_decimal_string s) (Q.of_ints n d)))
    [
      ("3", 3, 1);
      ("3.5", 7, 2);
      ("-0.25", -1, 4);
      (".5", 1, 2);
      ("2e3", 2000, 1);
      ("1.5e-2", 3, 200);
      ("7/2", 7, 2);
      ("-7.1", -71, 10);
      ("+2.5", 5, 2);
      ("1.5E2", 150, 1);
    ]

let test_rational_decimal_invalid () =
  List.iter
    (fun s ->
      match Q.of_decimal_string s with
      | exception Invalid_argument _ -> ()
      | exception Division_by_zero -> ()
      | _ -> Alcotest.failf "accepted %S" s)
    [ ""; "."; "abc"; "1/0" ]

let test_rational_of_float () =
  check bool_t "0.5" true (Q.equal (Q.of_float 0.5) (Q.of_ints 1 2));
  check bool_t "-0.75" true (Q.equal (Q.of_float (-0.75)) (Q.of_ints (-3) 4));
  check bool_t "exact roundtrip" true
    (Q.to_float (Q.of_float 0.1) = 0.1);
  Alcotest.check_raises "nan" (Invalid_argument "Rational.of_float: not a finite float")
    (fun () -> ignore (Q.of_float Float.nan))

let test_rational_floor_ceil () =
  check int_t "floor 7/2" 3 (B.to_int (Q.floor (Q.of_ints 7 2)));
  check int_t "ceil 7/2" 4 (B.to_int (Q.ceil (Q.of_ints 7 2)));
  check int_t "floor -7/2" (-4) (B.to_int (Q.floor (Q.of_ints (-7) 2)));
  check int_t "ceil -7/2" (-3) (B.to_int (Q.ceil (Q.of_ints (-7) 2)));
  check int_t "floor int" 5 (B.to_int (Q.floor (Q.of_int 5)))

let test_rational_pow () =
  check bool_t "(2/3)^3" true (Q.equal (Q.pow (Q.of_ints 2 3) 3) (Q.of_ints 8 27));
  check bool_t "(2/3)^-2" true (Q.equal (Q.pow (Q.of_ints 2 3) (-2)) (Q.of_ints 9 4));
  check bool_t "x^0" true (Q.equal (Q.pow (Q.of_ints 5 7) 0) Q.one)

let arb_rational =
  QCheck.map
    (fun (n, d) -> Q.of_ints n (1 + abs d))
    QCheck.(pair (int_range (-10000) 10000) (int_range 0 999))

let prop_rational_field =
  QCheck.Test.make ~name:"rational field laws" ~count:500
    (QCheck.triple arb_rational arb_rational arb_rational)
    (fun (a, b, c) ->
      Q.equal (Q.add a (Q.add b c)) (Q.add (Q.add a b) c)
      && Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c))
      && Q.equal (Q.sub a b) (Q.neg (Q.sub b a)))

let prop_rational_ordering =
  QCheck.Test.make ~name:"rational ordering total" ~count:500
    (QCheck.pair arb_rational arb_rational)
    (fun (a, b) ->
      let c = Q.compare a b in
      (c = 0) = Q.equal a b
      && (c < 0) = Q.lt a b
      && Q.leq (Q.min a b) (Q.max a b))

let prop_rational_float_of_exact =
  QCheck.Test.make ~name:"of_float exact for dyadics" ~count:500
    QCheck.(int_range (-100000) 100000)
    (fun n ->
      let f = float_of_int n /. 1024.0 in
      Q.to_float (Q.of_float f) = f)

(* ------------------------------------------------------------------ *)
(* Delta_rational.                                                     *)

let test_delta_ordering () =
  let d = DR.delta in
  check bool_t "delta > 0" true (DR.lt DR.zero d);
  check bool_t "1 > delta" true (DR.lt d (DR.of_int 1));
  check bool_t "1 + delta > 1" true (DR.lt (DR.of_int 1) (DR.add (DR.of_int 1) d));
  check bool_t "lexicographic" true
    (DR.lt (DR.make Q.one (Q.of_int 100)) (DR.make (Q.of_int 2) Q.zero))

let test_delta_concretize () =
  (* 3 - delta >= x must stay true for x = 2.9... take pairs (lhs <= rhs) *)
  let pairs =
    [
      (DR.make (Q.of_ints 29 10) Q.zero, DR.make (Q.of_int 3) Q.minus_one);
      (DR.zero, DR.delta);
    ]
  in
  let d = DR.concretize_delta pairs in
  check bool_t "delta positive" true (Q.sign d > 0);
  List.iter
    (fun (lhs, rhs) ->
      check bool_t "ordering preserved" true
        (Q.leq (DR.substitute d lhs) (DR.substitute d rhs)))
    pairs

let prop_delta_add_monotone =
  QCheck.Test.make ~name:"delta-rational addition monotone" ~count:300
    (QCheck.triple arb_rational arb_rational arb_rational)
    (fun (a, b, c) ->
      let x = DR.make a b and y = DR.make a (Q.add b c) in
      QCheck.assume (not (Q.is_zero c));
      DR.compare x y <> 0)

(* ------------------------------------------------------------------ *)
(* Float_ops.                                                          *)

let test_float_ops () =
  check bool_t "next_up 1" true (F.next_up 1.0 > 1.0);
  check bool_t "next_down 1" true (F.next_down 1.0 < 1.0);
  check bool_t "next_up 0" true (F.next_up 0.0 > 0.0);
  check bool_t "next_down 0" true (F.next_down 0.0 < 0.0);
  check bool_t "next_up -1" true (F.next_up (-1.0) > -1.0);
  check bool_t "inf stays" true (F.next_up Float.infinity = Float.infinity);
  check bool_t "overflow down" true
    (F.widen_down Float.infinity = Float.max_float);
  check bool_t "overflow up" true
    (F.widen_up Float.neg_infinity = -.Float.max_float)

let prop_directed_add =
  QCheck.Test.make ~name:"directed add brackets exact result" ~count:1000
    QCheck.(pair (float_range (-1e10) 1e10) (float_range (-1e10) 1e10))
    (fun (a, b) ->
      let lo = F.add_down a b and hi = F.add_up a b in
      lo <= a +. b && a +. b <= hi && lo < hi)

(* ------------------------------------------------------------------ *)
(* Interval.                                                           *)

let test_interval_basics () =
  let i = I.make 1.0 3.0 in
  check bool_t "mem" true (I.mem 2.0 i);
  check bool_t "not mem" false (I.mem 4.0 i);
  check bool_t "empty" true (I.is_empty I.empty);
  check bool_t "inter disjoint" true (I.is_empty (I.inter (I.make 0.0 1.0) (I.make 2.0 3.0)));
  check bool_t "hull" true (I.equal (I.hull (I.make 0.0 1.0) (I.make 2.0 3.0)) (I.make 0.0 3.0));
  Alcotest.check_raises "bad make" (Invalid_argument "Interval.make: lo > hi")
    (fun () -> ignore (I.make 2.0 1.0))

let test_interval_div_zero () =
  check bool_t "x/[0,0] empty" true (I.is_empty (I.div I.one I.zero));
  let r = I.div (I.make 1.0 2.0) (I.make 0.0 1.0) in
  check bool_t "[1,2]/[0,1] = [1,inf)" true (r.I.lo <= 1.0 && r.I.hi = Float.infinity);
  check bool_t "straddle -> entire" true
    (I.is_entire (I.div (I.make 1.0 2.0) (I.make (-1.0) 1.0)))

let test_interval_pow () =
  check bool_t "[-2,3]^2 = [0,9]-ish" true
    (let r = I.pow_int (I.make (-2.0) 3.0) 2 in
     r.I.lo <= 0.0 && r.I.lo >= -1e-10 && r.I.hi >= 9.0 && r.I.hi < 9.1);
  check bool_t "[-2,3]^3 covers [-8,27]" true
    (let r = I.pow_int (I.make (-2.0) 3.0) 3 in
     r.I.lo <= -8.0 && r.I.hi >= 27.0)

let test_interval_of_rational () =
  let r = I.of_rational (Q.of_ints 1 3) in
  check bool_t "1/3 tight" true
    (r.I.hi -. r.I.lo < 1e-15 && r.I.lo <= 0.33333333333333337 && r.I.hi >= 0.3333333333333333);
  let r = I.of_rational (Q.of_int 2) in
  check bool_t "2 exact-ish" true (I.mem 2.0 r && I.width r < 1e-14)

let test_interval_trig_range () =
  let s = I.sin (I.make 0.0 10.0) in
  check bool_t "wide sin = [-1,1]" true (s.I.lo <= -1.0 +. 1e-9 && s.I.hi >= 1.0 -. 1e-9);
  let c = I.cos (I.make (-0.1) 0.1) in
  check bool_t "cos near 0 has hi 1" true (c.I.hi >= 1.0);
  check bool_t "cos near 0 lo < 1" true (c.I.lo < 1.0 && c.I.lo > 0.99)

let arb_interval =
  QCheck.map
    (fun (a, b) -> I.make (Float.min a b) (Float.max a b))
    QCheck.(pair (float_range (-100.0) 100.0) (float_range (-100.0) 100.0))

let point_in i =
  QCheck.map
    (fun t -> i.I.lo +. (t *. (i.I.hi -. i.I.lo)))
    (QCheck.float_range 0.0 1.0)

let prop_interval_mul_contains =
  QCheck.Test.make ~name:"interval mul containment" ~count:2000
    QCheck.(quad arb_interval arb_interval (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (a, b, ta, tb) ->
      let x = a.I.lo +. (ta *. (a.I.hi -. a.I.lo)) in
      let y = b.I.lo +. (tb *. (b.I.hi -. b.I.lo)) in
      I.mem (x *. y) (I.mul a b))

let prop_interval_ops_contain =
  QCheck.Test.make ~name:"interval unary ops containment" ~count:2000
    QCheck.(pair arb_interval (float_range 0.0 1.0))
    (fun (a, t) ->
      let x = a.I.lo +. (t *. (a.I.hi -. a.I.lo)) in
      I.mem (Float.exp x) (I.exp a)
      && I.mem (Float.sin x) (I.sin a)
      && I.mem (Float.cos x) (I.cos a)
      && I.mem (x *. x) (I.sqr a)
      && I.mem (-.x) (I.neg a)
      && I.mem (Float.abs x) (I.abs a))

let prop_interval_div_contains =
  QCheck.Test.make ~name:"interval div containment" ~count:2000
    QCheck.(quad arb_interval arb_interval (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (a, b, ta, tb) ->
      let x = a.I.lo +. (ta *. (a.I.hi -. a.I.lo)) in
      let y = b.I.lo +. (tb *. (b.I.hi -. b.I.lo)) in
      QCheck.assume (y <> 0.0);
      let r = I.div a b in
      I.is_empty r || I.mem (x /. y) r)

let prop_interval_split_covers =
  QCheck.Test.make ~name:"interval split covers" ~count:500 arb_interval
    (fun a ->
      QCheck.assume (I.width a > 1e-9);
      let l, r = I.split a in
      I.equal (I.hull l r) a)

let _ = point_in

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let suite =
  [
    ("bigint basics", `Quick, test_bigint_basics);
    ("bigint min_int", `Quick, test_bigint_min_int);
    ("bigint string roundtrip", `Quick, test_bigint_string_roundtrip);
    ("bigint underscores", `Quick, test_bigint_string_underscores);
    ("bigint invalid strings", `Quick, test_bigint_string_invalid);
    ("bigint arithmetic", `Quick, test_bigint_arith);
    ("bigint division signs", `Quick, test_bigint_div_signs);
    ("bigint division by zero", `Quick, test_bigint_div_by_zero);
    ("bigint gcd", `Quick, test_bigint_gcd);
    ("bigint pow", `Quick, test_bigint_pow);
    ("bigint shift", `Quick, test_bigint_shift);
    ("bigint to_int overflow", `Quick, test_bigint_to_int);
    ("bigint num_bits", `Quick, test_bigint_num_bits);
    ("rational normalization", `Quick, test_rational_normalization);
    ("rational arithmetic", `Quick, test_rational_arith);
    ("rational decimal strings", `Quick, test_rational_decimal_strings);
    ("rational invalid strings", `Quick, test_rational_decimal_invalid);
    ("rational of_float", `Quick, test_rational_of_float);
    ("rational floor/ceil", `Quick, test_rational_floor_ceil);
    ("rational pow", `Quick, test_rational_pow);
    ("delta ordering", `Quick, test_delta_ordering);
    ("delta concretize", `Quick, test_delta_concretize);
    ("float directed ops", `Quick, test_float_ops);
    ("interval basics", `Quick, test_interval_basics);
    ("interval division by zero-containing", `Quick, test_interval_div_zero);
    ("interval pow", `Quick, test_interval_pow);
    ("interval of_rational", `Quick, test_interval_of_rational);
    ("interval trig", `Quick, test_interval_trig_range);
  ]
  @ qsuite
      [
        prop_add_commutative;
        prop_mul_distributes;
        prop_divmod_identity;
        prop_string_roundtrip;
        prop_compare_consistent;
        prop_rational_field;
        prop_rational_ordering;
        prop_rational_float_of_exact;
        prop_delta_add_monotone;
        prop_directed_add;
        prop_interval_mul_contains;
        prop_interval_ops_contain;
        prop_interval_div_contains;
        prop_interval_split_covers;
      ]
