(* Cross-module integration tests: full pipelines, agreement between
   independent solving routes, and end-to-end properties. *)

module A = Absolver_core
module B = Absolver_baselines
module M = Absolver_model
module SL = Absolver_smtlib
module E = Absolver_nlp.Expr
module L = Absolver_lp.Linexpr
module T = Absolver_sat.Types
module Q = Absolver_numeric.Rational

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Engine vs tight baseline on random linear AB-problems.              *)

let random_linear_problem st =
  let nvars_arith = 2 + Random.State.int st 3 in
  let n_defs = 2 + Random.State.int st 5 in
  let p = A.Ab_problem.create () in
  let vars =
    List.init nvars_arith (fun i ->
        A.Ab_problem.intern_arith_var p (Printf.sprintf "v%d" i))
  in
  List.iter
    (fun v -> A.Ab_problem.set_bounds p v ~lower:(Q.of_int (-10)) ~upper:(Q.of_int 10) ())
    vars;
  for b = 0 to n_defs - 1 do
    let nterms = 1 + Random.State.int st 2 in
    let terms =
      List.init nterms (fun _ ->
          E.mul
            (E.const (Q.of_int (1 + Random.State.int st 3)))
            (E.var (Random.State.int st nvars_arith)))
    in
    let expr = E.sub (E.sum terms) (E.const (Q.of_int (Random.State.int st 9 - 4))) in
    let op = if Random.State.bool st then L.Le else L.Ge in
    A.Ab_problem.define p ~bool_var:b ~domain:A.Ab_problem.Dreal { E.expr; op; tag = b }
  done;
  (* Random small CNF over the defined variables. *)
  let n_clauses = 1 + Random.State.int st 4 in
  for _ = 1 to n_clauses do
    let len = 1 + Random.State.int st 3 in
    let clause =
      List.init len (fun _ ->
          let v = Random.State.int st n_defs in
          if Random.State.bool st then T.pos v else T.neg_of_var v)
    in
    A.Ab_problem.add_clause p clause
  done;
  p

let verdict_engine p =
  match fst (A.Engine.solve p) with
  | A.Engine.R_sat sol ->
    (match A.Solution.check p sol with
    | Ok () -> "sat"
    | Error e -> "sat-BROKEN: " ^ e)
  | A.Engine.R_unsat -> "unsat"
  | A.Engine.R_unknown w -> "unknown: " ^ w

let verdict_baseline p =
  match B.Mathsat_like.solve p with
  | B.Common.B_sat sol ->
    (match A.Solution.check p sol with
    | Ok () -> "sat"
    | Error e -> "sat-BROKEN: " ^ e)
  | r -> B.Common.result_name r

let test_engine_vs_baseline_random () =
  let st = Random.State.make [| 2024 |] in
  for i = 1 to 120 do
    let p = random_linear_problem st in
    let a = verdict_engine p and b = verdict_baseline p in
    if a <> b then
      Alcotest.failf "iteration %d: engine=%s baseline=%s\n%s" i a b
        (A.Dimacs_ext.to_string p)
  done

(* Restarting vs incremental enumeration agree on counts. *)
let test_enumeration_strategies_agree () =
  let st = Random.State.make [| 77 |] in
  for _ = 1 to 30 do
    let p = random_linear_problem st in
    let count registry =
      match A.Engine.all_models ~registry ~limit:40 p with
      | Ok (models, _) -> List.length models
      | Error e -> Alcotest.fail e
    in
    check int_t "strategy counts equal"
      (count A.Registry.default)
      (count A.Registry.with_chaff)
  done

(* ------------------------------------------------------------------ *)
(* File-level pipeline: write, reload, same verdict.                   *)

let test_file_roundtrip_pipeline () =
  let p = M.Steering.problem () in
  let path = Filename.temp_file "absolver" ".cnf" in
  A.Dimacs_ext.write_file path p;
  (match A.Dimacs_ext.parse_file path with
  | Error e -> Alcotest.fail e
  | Ok p2 ->
    check bool_t "stats preserved" true (A.Ab_problem.stats p = A.Ab_problem.stats p2));
  Sys.remove path

let test_simulink_file_pipeline () =
  (* Model text -> diagram -> AB-problem -> solve; all through files. *)
  let text =
    {|model gate
block 0 Inport temp -40 125
block 1 Inport limit 0 100
block 2 Relop >
block 3 Outport alarm
wire 0 2 0
wire 1 2 1
wire 2 3 0
|}
  in
  let path = Filename.temp_file "model" ".mdl" in
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  (match M.Simulink_text.parse_file path with
  | Error e -> Alcotest.fail e
  | Ok (name, d) -> (
    check bool_t "name" true (name = "gate");
    match M.Convert.diagram_to_ab ~goal:`Find_witness ~output:"alarm" d with
    | Error e -> Alcotest.fail e
    | Ok problem -> (
      match A.Engine.solve problem with
      | A.Engine.R_sat sol, _ ->
        let tv = Option.get (A.Ab_problem.arith_var_index problem "temp") in
        let lv = Option.get (A.Ab_problem.arith_var_index problem "limit") in
        check bool_t "temp > limit" true
          (A.Solution.float_env sol ~default:0.0 tv
          > A.Solution.float_env sol ~default:0.0 lv)
      | _ -> Alcotest.fail "witness expected")));
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* SMT-LIB generated text through the whole stack.                     *)

let test_fischer_text_through_stack () =
  let b = SL.Fischer.benchmark ~rounds:3 ~property:(SL.Fischer.Cs_within (Q.of_int 4)) ~n:2 () in
  let text = SL.Ast.to_string b in
  match SL.Parser.parse_benchmark text with
  | Error e -> Alcotest.fail e
  | Ok parsed -> (
    match SL.To_ab.convert parsed with
    | Error e -> Alcotest.fail e
    | Ok problem -> (
      (* Also survive the extended-DIMACS roundtrip. *)
      let dimacs = A.Dimacs_ext.to_string problem in
      match A.Dimacs_ext.parse_string dimacs with
      | Error e -> Alcotest.fail e
      | Ok problem2 -> (
        match (fst (A.Engine.solve problem), fst (A.Engine.solve problem2)) with
        | A.Engine.R_sat _, A.Engine.R_sat _ -> ()
        | _ -> Alcotest.fail "verdicts differ across the DIMACS roundtrip")))

(* The nonlinear witness path: a problem whose solution must mix exact
   linear values and approximate nonlinear ones. *)
let test_mixed_exact_approx_solution () =
  let text =
    {|p cnf 2 2
1 0
2 0
c def int 1 n >= 4
c def real 2 x * x <= 2
c bound n 0 10
c bound x 0.5 10
|}
  in
  match A.Dimacs_ext.parse_string text with
  | Error e -> Alcotest.fail e
  | Ok p -> (
    match A.Engine.solve p with
    | A.Engine.R_sat sol, _ ->
      check bool_t "verified" true (A.Solution.check p sol = Ok ());
      let n = Option.get (A.Ab_problem.arith_var_index p "n") in
      let x = Option.get (A.Ab_problem.arith_var_index p "x") in
      (* n must be exact (pure linear), x approximate (nonlinear). *)
      (match sol.A.Solution.arith.(n) with
      | Some (A.Solution.Exact q) -> check bool_t "n >= 4" true (Q.geq q (Q.of_int 4))
      | _ -> Alcotest.fail "n should be exact");
      (match sol.A.Solution.arith.(x) with
      | Some v ->
        let f = A.Solution.value_to_float v in
        check bool_t "x in [0.5, sqrt 2]" true (f >= 0.5 -. 1e-9 && f <= Float.sqrt 2.0 +. 1e-6)
      | None -> Alcotest.fail "x missing")
    | _ -> Alcotest.fail "sat expected")

let suite =
  [
    ("engine vs baseline on random problems", `Quick, test_engine_vs_baseline_random);
    ("enumeration strategies agree", `Quick, test_enumeration_strategies_agree);
    ("file roundtrip pipeline", `Quick, test_file_roundtrip_pipeline);
    ("simulink file pipeline", `Quick, test_simulink_file_pipeline);
    ("fischer text through stack", `Quick, test_fischer_text_through_stack);
    ("mixed exact/approximate solution", `Quick, test_mixed_exact_approx_solution);
  ]
