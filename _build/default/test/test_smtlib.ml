(* Tests for the SMT-LIB layer: parser, conversion, Fischer generator. *)

module SL = Absolver_smtlib
module A = Absolver_core
module Q = Absolver_numeric.Rational

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let test_sexp_parser () =
  match SL.Parser.parse_sexps "(a (b c) ; comment\n d) ()" with
  | Ok [ SL.Parser.List [ SL.Parser.Atom "a"; SL.Parser.List [ SL.Parser.Atom "b"; SL.Parser.Atom "c" ]; SL.Parser.Atom "d" ]; SL.Parser.List [] ] -> ()
  | Ok _ -> Alcotest.fail "wrong structure"
  | Error e -> Alcotest.fail e

let test_sexp_errors () =
  (match SL.Parser.parse_sexps "(a (b)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unclosed paren accepted");
  match SL.Parser.parse_sexps "a) b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stray paren accepted"

let sample_benchmark =
  {|(benchmark sample
  :logic QF_LRA
  :status sat
  :extrafuns ((x Real) (y Real))
  :extrapreds ((p))
  :assumption (>= x 0)
  :formula (and (or p (<= (+ x y) 2)) (> y (~ 1)))
)|}

let test_parse_benchmark () =
  match SL.Parser.parse_benchmark sample_benchmark with
  | Error e -> Alcotest.fail e
  | Ok b ->
    check bool_t "name" true (b.SL.Ast.name = "sample");
    check bool_t "logic" true (b.SL.Ast.logic = "QF_LRA");
    check bool_t "status" true (b.SL.Ast.status = `Sat);
    check int_t "funs" 2 (List.length b.SL.Ast.extrafuns);
    check int_t "preds" 1 (List.length b.SL.Ast.extrapreds);
    check int_t "assumptions" 1 (List.length b.SL.Ast.assumptions)

let test_print_parse_roundtrip () =
  match SL.Parser.parse_benchmark sample_benchmark with
  | Error e -> Alcotest.fail e
  | Ok b -> (
    let printed = SL.Ast.to_string b in
    match SL.Parser.parse_benchmark printed with
    | Error e -> Alcotest.failf "reparse: %s" e
    | Ok b2 ->
      check bool_t "stable" true (SL.Ast.to_string b2 = printed))

let test_convert_and_solve () =
  match SL.Parser.parse_benchmark sample_benchmark with
  | Error e -> Alcotest.fail e
  | Ok b -> (
    match SL.To_ab.convert b with
    | Error e -> Alcotest.fail e
    | Ok problem -> (
      match A.Engine.solve problem with
      | A.Engine.R_sat sol, _ ->
        check bool_t "verified" true (A.Solution.check problem sol = Ok ())
      | _ -> Alcotest.fail "declared sat"))

let test_convert_unsat_benchmark () =
  let text =
    {|(benchmark tiny_unsat
  :logic QF_LRA
  :status unsat
  :extrafuns ((x Real))
  :formula (and (>= x 1) (<= x 0))
)|}
  in
  match SL.Parser.parse_benchmark text with
  | Error e -> Alcotest.fail e
  | Ok b -> (
    match SL.To_ab.convert b with
    | Error e -> Alcotest.fail e
    | Ok problem -> (
      match A.Engine.solve problem with
      | A.Engine.R_unsat, _ -> ()
      | _ -> Alcotest.fail "declared unsat"))

let test_convert_integer_sorts () =
  let text =
    {|(benchmark int_test
  :logic QF_LIA
  :status unsat
  :extrafuns ((n Int))
  :formula (and (> n 0) (< n 1))
)|}
  in
  match SL.Parser.parse_benchmark text with
  | Error e -> Alcotest.fail e
  | Ok b -> (
    match SL.To_ab.convert b with
    | Error e -> Alcotest.fail e
    | Ok problem -> (
      (* 0 < n < 1 has rational solutions but no integer ones. *)
      match A.Engine.solve problem with
      | A.Engine.R_unsat, _ -> ()
      | _ -> Alcotest.fail "no integer strictly between 0 and 1"))

let test_undeclared_predicate () =
  let text = "(benchmark b :logic QF_LRA :formula (and q))" in
  match SL.Parser.parse_benchmark text with
  | Error _ -> ()
  | Ok b -> (
    (* The parser treats bare atoms as predicates; conversion rejects the
       undeclared one. *)
    match SL.To_ab.convert b with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "undeclared predicate accepted")

(* ------------------------------------------------------------------ *)
(* Fischer.                                                            *)

let solve_fischer ?rounds ?property n =
  match SL.Fischer.problem ?rounds ?property ~n () with
  | Error e -> Alcotest.fail e
  | Ok p -> fst (A.Engine.solve p)

let test_fischer_cs_reachable () =
  match solve_fischer ~rounds:3 ~property:(SL.Fischer.Cs_within (Q.of_int 4)) 2 with
  | A.Engine.R_sat _ -> ()
  | _ -> Alcotest.fail "cs reachable within 4"

let test_fischer_deadline_too_tight () =
  match solve_fischer ~rounds:3 ~property:(SL.Fischer.Cs_within (Q.of_int 2)) 2 with
  | A.Engine.R_unsat -> ()
  | _ -> Alcotest.fail "cs not reachable within 2 (wait is strict)"

let test_fischer_mutex_safe () =
  (* The protocol guarantees mutual exclusion for a < b. *)
  match solve_fischer ~rounds:6 ~property:SL.Fischer.Mutex_violation 2 with
  | A.Engine.R_unsat -> ()
  | _ -> Alcotest.fail "mutex violated?!"

let test_fischer_declared_status () =
  List.iter
    (fun (property, expected) ->
      let b = SL.Fischer.benchmark ~rounds:3 ~property ~n:2 () in
      check bool_t "status" true (b.SL.Ast.status = expected))
    [
      (SL.Fischer.Cs_within (Q.of_int 4), `Sat);
      (SL.Fischer.Cs_within (Q.of_int 2), `Unsat);
      (SL.Fischer.Mutex_violation, `Unsat);
    ]

let test_fischer_pipeline_roundtrip () =
  (* The generated SMT-LIB text must survive printing and parsing. *)
  let b = SL.Fischer.benchmark ~rounds:2 ~n:2 () in
  let text = SL.Ast.to_string b in
  match SL.Parser.parse_benchmark text with
  | Error e -> Alcotest.fail e
  | Ok b2 ->
    check bool_t "name" true (b2.SL.Ast.name = b.SL.Ast.name);
    check int_t "same predicate count"
      (List.length b.SL.Ast.extrapreds)
      (List.length b2.SL.Ast.extrapreds)

let test_fischer_witness_schedule () =
  (* The SAT witness of Cs_within must have total delay > 2 (the strict
     wait) and process 1 in cs at some step -- checked by the generic
     solution checker plus a spot check on the delays. *)
  match SL.Fischer.problem ~rounds:3 ~property:(SL.Fischer.Cs_within (Q.of_int 4)) ~n:1 () with
  | Error e -> Alcotest.fail e
  | Ok p -> (
    match A.Engine.solve p with
    | A.Engine.R_sat sol, _ -> (
      check bool_t "verified" true (A.Solution.check p sol = Ok ());
      let total = ref 0.0 in
      let found = ref false in
      for t = 0 to 5 do
        match A.Ab_problem.arith_var_index p (Printf.sprintf "d_s%d" t) with
        | Some v ->
          found := true;
          total := !total +. A.Solution.float_env sol ~default:0.0 v
        | None -> ()
      done;
      check bool_t "delays present" true !found;
      check bool_t "total in (2, 4]" true (!total > 2.0 && !total <= 4.0 +. 1e-6))
    | _ -> Alcotest.fail "sat expected")

let suite =
  [
    ("sexp parser", `Quick, test_sexp_parser);
    ("sexp errors", `Quick, test_sexp_errors);
    ("benchmark parser", `Quick, test_parse_benchmark);
    ("print/parse roundtrip", `Quick, test_print_parse_roundtrip);
    ("convert and solve", `Quick, test_convert_and_solve);
    ("convert unsat", `Quick, test_convert_unsat_benchmark);
    ("integer sorts", `Quick, test_convert_integer_sorts);
    ("undeclared predicate", `Quick, test_undeclared_predicate);
    ("fischer cs reachable", `Quick, test_fischer_cs_reachable);
    ("fischer deadline tight", `Quick, test_fischer_deadline_too_tight);
    ("fischer mutex safe", `Quick, test_fischer_mutex_safe);
    ("fischer declared status", `Quick, test_fischer_declared_status);
    ("fischer text roundtrip", `Quick, test_fischer_pipeline_roundtrip);
    ("fischer witness schedule", `Quick, test_fischer_witness_schedule);
  ]
