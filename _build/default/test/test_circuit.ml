(* Tests for the 3-valued logic and the circuit data structure. *)

module TB = Absolver_circuit.Tribool
module C = Absolver_circuit.Circuit
module E = Absolver_nlp.Expr
module L = Absolver_lp.Linexpr
module Q = Absolver_numeric.Rational

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let test_tribool_kleene () =
  (* Kleene strong 3-valued tables. *)
  check bool_t "F and ? = F" true (TB.and_ TB.False TB.Unknown = TB.False);
  check bool_t "T and ? = ?" true (TB.and_ TB.True TB.Unknown = TB.Unknown);
  check bool_t "T or ? = T" true (TB.or_ TB.True TB.Unknown = TB.True);
  check bool_t "F or ? = ?" true (TB.or_ TB.False TB.Unknown = TB.Unknown);
  check bool_t "not ? = ?" true (TB.not_ TB.Unknown = TB.Unknown);
  check bool_t "? xor T = ?" true (TB.xor TB.Unknown TB.True = TB.Unknown);
  check bool_t "implies F ? = T" true (TB.implies TB.False TB.Unknown = TB.True);
  check bool_t "to_string" true (TB.to_string TB.Unknown = "?")

let test_tribool_lists () =
  check bool_t "and_list empty" true (TB.and_list [] = TB.True);
  check bool_t "or_list empty" true (TB.or_list [] = TB.False);
  check bool_t "and_list with F" true
    (TB.and_list [ TB.True; TB.Unknown; TB.False ] = TB.False)

let test_circuit_hash_consing () =
  let b = C.builder () in
  let i0 = C.input b 0 and i0' = C.input b 0 in
  check bool_t "inputs shared" true (i0 == i0');
  let a1 = C.and_ b [ i0; C.input b 1 ] in
  let a2 = C.and_ b [ i0; C.input b 1 ] in
  check bool_t "gates shared" true (a1 == a2)

let test_circuit_eval_three_valued () =
  (* Fig. 5-style fragment: (b0 and cmp) with cmp = (x - 1 >= 0). *)
  let b = C.builder () in
  let cmp = C.cmp b (E.sub (E.var 0) (E.const Q.one)) L.Ge in
  let out = C.and_ b [ C.input b 0; cmp ] in
  let circuit = C.seal b ~output:out in
  let eval b0 xval =
    C.eval
      ~bool_env:(fun _ -> b0)
      ~arith_env:(fun _ -> xval)
      circuit
  in
  check bool_t "all known true" true (eval TB.True (Some (Q.of_int 2)) = TB.True);
  check bool_t "cmp false" true (eval TB.True (Some Q.zero) = TB.False);
  check bool_t "arith unknown" true (eval TB.True None = TB.Unknown);
  check bool_t "bool false dominates" true (eval TB.False None = TB.False)

let test_circuit_observers () =
  let b = C.builder () in
  let cmp1 = C.cmp b (E.var 0) L.Ge in
  let cmp2 = C.cmp b (E.add (E.var 1) (E.var 2)) L.Lt in
  let out = C.or_ b [ C.not_ b (C.input b 3); cmp1; cmp2 ] in
  let circuit = C.seal b ~output:out in
  check bool_t "bool inputs" true (C.boolean_inputs circuit = [ 3 ]);
  check bool_t "arith vars" true (C.arithmetic_vars circuit = [ 0; 1; 2 ]);
  check int_t "comparisons" 2 (List.length (C.comparisons circuit));
  let dot = C.to_dot circuit in
  check bool_t "dot nonempty" true (String.length dot > 100);
  check bool_t "dot has digraph" true
    (String.length dot > 8 && String.sub dot 0 8 = "digraph ")

let test_circuit_nested () =
  (* not(and(or(b0, b1), b2)) evaluated on all 8 assignments matches the
     Boolean semantics when everything is known. *)
  let b = C.builder () in
  let f = C.not_ b (C.and_ b [ C.or_ b [ C.input b 0; C.input b 1 ]; C.input b 2 ]) in
  let circuit = C.seal b ~output:f in
  for m = 0 to 7 do
    let env v = TB.of_bool ((m lsr v) land 1 = 1) in
    let expected =
      not ((((m lsr 0) land 1 = 1) || ((m lsr 1) land 1 = 1)) && (m lsr 2) land 1 = 1)
    in
    check bool_t "nested eval" true
      (C.eval ~bool_env:env ~arith_env:(fun _ -> None) circuit = TB.of_bool expected)
  done

let suite =
  [
    ("tribool kleene tables", `Quick, test_tribool_kleene);
    ("tribool list ops", `Quick, test_tribool_lists);
    ("circuit hash consing", `Quick, test_circuit_hash_consing);
    ("circuit 3-valued eval", `Quick, test_circuit_eval_three_valued);
    ("circuit observers and dot", `Quick, test_circuit_observers);
    ("circuit nested eval", `Quick, test_circuit_nested);
  ]
