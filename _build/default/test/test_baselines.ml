(* Tests for the comparison baselines: the shared DPLL(T) core, the
   MathSAT-like and CVC-Lite-like configurations, and the memory budget. *)

module A = Absolver_core
module B = Absolver_baselines
module SL = Absolver_smtlib
module S = Absolver_encodings.Sudoku
module P = Absolver_encodings.Puzzles
module Q = Absolver_numeric.Rational

let check = Alcotest.check
let bool_t = Alcotest.bool

let parse text =
  match A.Dimacs_ext.parse_string text with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %s" e

let test_budget () =
  let b = B.Budget.create ~limit:100 in
  B.Budget.alloc b 60;
  check bool_t "allocated" true (B.Budget.allocated b = 60);
  Alcotest.check_raises "overflows" B.Budget.Simulated_out_of_memory (fun () ->
      B.Budget.alloc b 50)

let test_reject_nonlinear () =
  let p = parse "p cnf 1 1\n1 0\nc def real 1 x * y >= 1\n" in
  (match B.Mathsat_like.solve p with
  | B.Common.B_rejected _ -> ()
  | r -> Alcotest.failf "mathsat: %s" (B.Common.result_name r));
  match B.Cvclite_like.solve p with
  | B.Common.B_rejected _ -> ()
  | r -> Alcotest.failf "cvc: %s" (B.Common.result_name r)

let test_linear_sat () =
  let p =
    parse
      "p cnf 2 2\n1 0\n2 0\nc def real 1 u + v >= 3\nc def real 2 u - v <= 1\n"
  in
  match B.Mathsat_like.solve p with
  | B.Common.B_sat sol -> check bool_t "verified" true (A.Solution.check p sol = Ok ())
  | r -> Alcotest.failf "expected sat, got %s" (B.Common.result_name r)

let test_linear_unsat () =
  let p = parse "p cnf 2 2\n1 0\n2 0\nc def real 1 u <= 1\nc def real 2 u >= 2\n" in
  (match B.Mathsat_like.solve p with
  | B.Common.B_unsat -> ()
  | r -> Alcotest.failf "expected unsat, got %s" (B.Common.result_name r));
  match B.Cvclite_like.solve p with
  | B.Common.B_unsat -> ()
  | r -> Alcotest.failf "cvc expected unsat, got %s" (B.Common.result_name r)

let test_negated_inequalities () =
  (* Clause forces var 1 false: u <= 1 must fail, so u > 1; combined with
     u <= 3 from var 2. *)
  let p =
    parse "p cnf 2 2\n-1 0\n2 0\nc def real 1 u <= 1\nc def real 2 u <= 3\n"
  in
  match B.Mathsat_like.solve p with
  | B.Common.B_sat sol -> check bool_t "verified" true (A.Solution.check p sol = Ok ())
  | r -> Alcotest.failf "expected sat, got %s" (B.Common.result_name r)

let test_negated_equality_deferred () =
  (* not (u = 3) with u in [0, 10]: the deferred-disequality path. *)
  let p = parse "p cnf 1 1\n-1 0\nc def real 1 u = 3\nc bound u 0 10\n" in
  match B.Mathsat_like.solve p with
  | B.Common.B_sat sol -> check bool_t "verified" true (A.Solution.check p sol = Ok ())
  | r -> Alcotest.failf "expected sat, got %s" (B.Common.result_name r)

let test_integer_final_check () =
  (* 0 < u < 1 with u integer: rationally fine, integrally unsat. *)
  let p =
    parse "p cnf 2 2\n1 0\n2 0\nc def int 1 2 * u >= 1\nc def int 2 2 * u <= 1\n"
  in
  match B.Mathsat_like.solve p with
  | B.Common.B_unsat -> ()
  | r -> Alcotest.failf "expected integral unsat, got %s" (B.Common.result_name r)

let test_agreement_with_engine_on_fischer () =
  (* The tight baselines and the loose engine must agree on verdicts. *)
  List.iter
    (fun (n, property) ->
      match SL.Fischer.problem ~rounds:3 ~property ~n () with
      | Error e -> Alcotest.fail e
      | Ok p ->
        let engine =
          match fst (A.Engine.solve p) with
          | A.Engine.R_sat _ -> "sat"
          | A.Engine.R_unsat -> "unsat"
          | A.Engine.R_unknown _ -> "unknown"
        in
        let ms = B.Common.result_name (B.Mathsat_like.solve p) in
        let cv = B.Common.result_name (B.Cvclite_like.solve p) in
        check Alcotest.string (Printf.sprintf "mathsat n=%d" n) engine ms;
        check Alcotest.string (Printf.sprintf "cvc n=%d" n) engine cv)
    [
      (1, SL.Fischer.Cs_within (Q.of_int 4));
      (2, SL.Fischer.Cs_within (Q.of_int 4));
      (1, SL.Fischer.Cs_within (Q.of_int 2));
      (2, SL.Fischer.Cs_within (Q.of_int 2));
      (3, SL.Fischer.Cs_within (Q.of_int 2));
    ]

let test_mathsat_sat_model_valid () =
  (* On a satisfiable mixed instance the model must satisfy the
     delta-semantics, exactly like the engine's. *)
  let p =
    parse
      {|p cnf 3 2
1 -2 0
3 0
c def real 1 u + v <= 4
c def real 2 u >= 3
c def real 3 v >= 1
c bound u 0 10
c bound v 0 10
|}
  in
  match B.Mathsat_like.solve p with
  | B.Common.B_sat sol -> check bool_t "verified" true (A.Solution.check p sol = Ok ())
  | r -> Alcotest.failf "expected sat, got %s" (B.Common.result_name r)

let test_cvc_oom_on_sudoku () =
  let _, puzzle = List.hd P.all in
  let bp = S.baseline_problem puzzle in
  match B.Cvclite_like.solve ~memory_budget:2_000_000 ~deadline_seconds:30.0 bp with
  | B.Common.B_out_of_memory -> ()
  | r -> Alcotest.failf "expected oom, got %s" (B.Common.result_name r)

let test_mathsat_slow_on_sudoku () =
  (* With a short deadline the integer-heavy Sudoku encoding cannot be
     finished -- the Table 3 shape. *)
  let _, puzzle = List.hd P.all in
  let bp = S.baseline_problem puzzle in
  match B.Mathsat_like.solve ~deadline_seconds:3.0 bp with
  | B.Common.B_unknown _ -> ()
  | B.Common.B_sat sol ->
    (* If it somehow finishes, the answer must at least be correct. *)
    check bool_t "verified" true (A.Solution.check bp sol = Ok ())
  | r -> Alcotest.failf "unexpected %s" (B.Common.result_name r)

let suite =
  [
    ("budget accounting", `Quick, test_budget);
    ("nonlinear rejected", `Quick, test_reject_nonlinear);
    ("linear sat", `Quick, test_linear_sat);
    ("linear unsat", `Quick, test_linear_unsat);
    ("negated inequalities", `Quick, test_negated_inequalities);
    ("negated equality deferred", `Quick, test_negated_equality_deferred);
    ("integer final check", `Quick, test_integer_final_check);
    ("agreement with engine", `Quick, test_agreement_with_engine_on_fischer);
    ("model validity", `Quick, test_mathsat_sat_model_valid);
    ("cvc out-of-memory on sudoku", `Slow, test_cvc_oom_on_sudoku);
    ("mathsat slow on sudoku", `Slow, test_mathsat_slow_on_sudoku);
  ]
