(* Tests for the model front end: blocks, diagrams, the textual format,
   the LUSTRE-like intermediate form, the conversion chain, and the
   steering case study. *)

module M = Absolver_model
module A = Absolver_core
module Q = Absolver_numeric.Rational

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let q s = Q.of_decimal_string s

let test_block_arity () =
  check int_t "inport" 0 (M.Block.arity (M.Block.B_inport { name = "x"; lo = None; hi = None; integer = false }));
  check int_t "add" 2 (M.Block.arity M.Block.B_add;);
  check int_t "sum 5" 5 (M.Block.arity (M.Block.B_sum 5));
  check int_t "not" 1 (M.Block.arity M.Block.B_not);
  check bool_t "compare is boolean" true
    (M.Block.is_boolean_output (M.Block.B_compare (M.Block.C_ge, Q.zero)));
  check bool_t "add is numeric" false (M.Block.is_boolean_output M.Block.B_add)

let simple_diagram () =
  (* ok = (x + 1 >= 2) *)
  let d = M.Diagram.create () in
  let x = M.Diagram.add_block d (M.Block.B_inport { name = "x"; lo = Some Q.zero; hi = Some (Q.of_int 10); integer = false }) in
  let one = M.Diagram.add_block d (M.Block.B_const Q.one) in
  let add = M.Diagram.add_block d M.Block.B_add in
  let cmp = M.Diagram.add_block d (M.Block.B_compare (M.Block.C_ge, Q.of_int 2)) in
  let out = M.Diagram.add_block d (M.Block.B_outport "ok") in
  M.Diagram.connect d ~src:x ~dst:add ~port:0;
  M.Diagram.connect d ~src:one ~dst:add ~port:1;
  M.Diagram.connect d ~src:add ~dst:cmp ~port:0;
  M.Diagram.connect d ~src:cmp ~dst:out ~port:0;
  d

let test_diagram_validate_ok () =
  check bool_t "valid" true (M.Diagram.validate (simple_diagram ()) = Ok ())

let test_diagram_unconnected () =
  let d = M.Diagram.create () in
  let _ = M.Diagram.add_block d M.Block.B_add in
  let _ = M.Diagram.add_block d (M.Block.B_outport "o") in
  match M.Diagram.validate d with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unconnected inputs accepted"

let test_diagram_type_mismatch () =
  (* Feeding a numeric signal into an AND gate. *)
  let d = M.Diagram.create () in
  let c = M.Diagram.add_block d (M.Block.B_const Q.one) in
  let g = M.Diagram.add_block d (M.Block.B_and 2) in
  let o = M.Diagram.add_block d (M.Block.B_outport "ok") in
  M.Diagram.connect d ~src:c ~dst:g ~port:0;
  M.Diagram.connect d ~src:c ~dst:g ~port:1;
  M.Diagram.connect d ~src:g ~dst:o ~port:0;
  match M.Diagram.validate d with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "type mismatch accepted"

let test_diagram_cycle () =
  let d = M.Diagram.create () in
  let a = M.Diagram.add_block d M.Block.B_add in
  let b = M.Diagram.add_block d M.Block.B_add in
  M.Diagram.connect d ~src:a ~dst:b ~port:0;
  M.Diagram.connect d ~src:b ~dst:a ~port:0;
  match M.Diagram.topological_order d with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cycle accepted"

let test_lustre_generation () =
  match M.Lustre.of_diagram ~name:"simple" (simple_diagram ()) with
  | Error e -> Alcotest.fail e
  | Ok node ->
    check int_t "inputs" 1 (List.length node.M.Lustre.inputs);
    check bool_t "output" true (node.M.Lustre.outputs = [ "ok" ]);
    let text = M.Lustre.to_string node in
    check bool_t "has node header" true
      (String.length text > 12 && String.sub text 0 11 = "node simple");
    check bool_t "ok is bool" true (M.Lustre.signal_ty node "ok" = Some M.Lustre.T_bool)

let test_convert_and_solve () =
  match M.Convert.diagram_to_ab ~goal:`Find_witness ~output:"ok" (simple_diagram ()) with
  | Error e -> Alcotest.fail e
  | Ok problem -> (
    let stats = A.Ab_problem.stats problem in
    check int_t "one atom" 1 (stats.A.Ab_problem.n_linear + stats.A.Ab_problem.n_nonlinear);
    match A.Engine.solve problem with
    | A.Engine.R_sat sol, _ ->
      check bool_t "verified" true (A.Solution.check problem sol = Ok ());
      let x = Option.get (A.Ab_problem.arith_var_index problem "x") in
      check bool_t "x+1 >= 2" true (A.Solution.float_env sol ~default:0.0 x >= 1.0 -. 1e-9)
    | _ -> Alcotest.fail "witness expected")

let test_convert_violation_dual () =
  (* Find_violation of (x + 1 >= 2) over x in [0, 10] must find x < 1. *)
  match M.Convert.diagram_to_ab ~goal:`Find_violation ~output:"ok" (simple_diagram ()) with
  | Error e -> Alcotest.fail e
  | Ok problem -> (
    match A.Engine.solve problem with
    | A.Engine.R_sat sol, _ ->
      let x = Option.get (A.Ab_problem.arith_var_index problem "x") in
      check bool_t "x < 1" true (A.Solution.float_env sol ~default:5.0 x < 1.0)
    | _ -> Alcotest.fail "violation expected")

let test_convert_unprovable_violation () =
  (* x >= 0 over x in [0, 10] cannot be violated: UNSAT = property holds. *)
  let d = M.Diagram.create () in
  let x = M.Diagram.add_block d (M.Block.B_inport { name = "x"; lo = Some Q.zero; hi = Some (Q.of_int 10); integer = false }) in
  let cmp = M.Diagram.add_block d (M.Block.B_compare (M.Block.C_ge, Q.zero)) in
  let out = M.Diagram.add_block d (M.Block.B_outport "ok") in
  M.Diagram.connect d ~src:x ~dst:cmp ~port:0;
  M.Diagram.connect d ~src:cmp ~dst:out ~port:0;
  match M.Convert.diagram_to_ab ~output:"ok" d with
  | Error e -> Alcotest.fail e
  | Ok problem -> (
    match A.Engine.solve problem with
    | A.Engine.R_unsat, _ -> ()
    | _ -> Alcotest.fail "property should hold")

let test_simulink_text_roundtrip () =
  let text = M.Simulink_text.to_string ~name:"simple" (simple_diagram ()) in
  match M.Simulink_text.parse_string text with
  | Error e -> Alcotest.fail e
  | Ok (name, d2) ->
    check bool_t "name" true (name = "simple");
    check int_t "blocks" (M.Diagram.num_blocks (simple_diagram ())) (M.Diagram.num_blocks d2);
    check bool_t "still valid" true (M.Diagram.validate d2 = Ok ());
    (* And equal after re-printing. *)
    check bool_t "fixpoint" true
      (M.Simulink_text.to_string ~name:"simple" d2 = text)

let test_simulink_text_errors () =
  let bad input =
    match M.Simulink_text.parse_string input with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" input
  in
  bad "block 0 Frobnicate\n";
  bad "block 1 Add\n";
  (* non-dense id *)
  bad "block 0 Compare >= abc\n";
  bad "frob 1 2\n"

let test_simulink_text_comments () =
  let text = "# comment\nmodel m\nblock 0 Const 1 # trailing\nblock 1 Compare >= 0\nblock 2 Outport ok\nwire 0 1 0\nwire 1 2 0\n" in
  match M.Simulink_text.parse_string text with
  | Error e -> Alcotest.fail e
  | Ok (_, d) -> check int_t "blocks" 3 (M.Diagram.num_blocks d)

let test_steering_statistics () =
  let p = M.Steering.problem () in
  let s = A.Ab_problem.stats p in
  check int_t "clauses = 976" M.Steering.target_clauses s.A.Ab_problem.n_clauses;
  check int_t "4 linear" 4 s.A.Ab_problem.n_linear;
  check int_t "20 nonlinear" 20 s.A.Ab_problem.n_nonlinear;
  check int_t "24 defined variables" 24
    (List.length (A.Ab_problem.defined_vars p));
  check bool_t "validates" true (A.Ab_problem.validate p = Ok ())

let test_steering_sensor_ranges () =
  let p = M.Steering.problem () in
  let range name lo hi =
    match A.Ab_problem.arith_var_index p name with
    | None -> Alcotest.failf "missing sensor %s" name
    | Some v -> (
      match List.assoc_opt v (A.Ab_problem.bounds p) with
      | Some (Some l, Some h) ->
        check bool_t (name ^ " lo") true (Q.equal l (q lo));
        check bool_t (name ^ " hi") true (Q.equal h (q hi))
      | _ -> Alcotest.failf "no bounds for %s" name)
  in
  range "yaw" "-7.0" "7.0";
  range "a_lat" "-20.0" "20.0";
  range "v_fl" "-400.0" "400.0";
  range "delta" "-1.0" "1.0"

let suite =
  [
    ("block arity/types", `Quick, test_block_arity);
    ("diagram validate ok", `Quick, test_diagram_validate_ok);
    ("diagram unconnected input", `Quick, test_diagram_unconnected);
    ("diagram type mismatch", `Quick, test_diagram_type_mismatch);
    ("diagram cycle detection", `Quick, test_diagram_cycle);
    ("lustre generation", `Quick, test_lustre_generation);
    ("convert and solve witness", `Quick, test_convert_and_solve);
    ("convert violation dual", `Quick, test_convert_violation_dual);
    ("convert proof by unsat", `Quick, test_convert_unprovable_violation);
    ("simulink text roundtrip", `Quick, test_simulink_text_roundtrip);
    ("simulink text errors", `Quick, test_simulink_text_errors);
    ("simulink text comments", `Quick, test_simulink_text_comments);
    ("steering table-1 statistics", `Quick, test_steering_statistics);
    ("steering sensor ranges", `Quick, test_steering_sensor_ranges);
  ]

(* ------------------------------------------------------------------ *)
(* Stateful models and bounded model checking.                         *)

let counter_diagram ~limit =
  (* c = 0 -> pre(c) + 1;  ok = (c <= limit) *)
  let d = M.Diagram.create () in
  let one = M.Diagram.add_block d (M.Block.B_const Q.one) in
  let add = M.Diagram.add_block d M.Block.B_add in
  let delay = M.Diagram.add_block d (M.Block.B_delay Q.zero) in
  let cmp = M.Diagram.add_block d (M.Block.B_compare (M.Block.C_le, Q.of_int limit)) in
  let out = M.Diagram.add_block d (M.Block.B_outport "ok") in
  (* add = delay + 1; delay input = add (feedback through the state edge) *)
  M.Diagram.connect d ~src:delay ~dst:add ~port:0;
  M.Diagram.connect d ~src:one ~dst:add ~port:1;
  M.Diagram.connect d ~src:add ~dst:delay ~port:0;
  M.Diagram.connect d ~src:add ~dst:cmp ~port:0;
  M.Diagram.connect d ~src:cmp ~dst:out ~port:0;
  d

let test_delay_feedback_validates () =
  (* The feedback loop through the delay is legal (state edge). *)
  check bool_t "validates" true (M.Diagram.validate (counter_diagram ~limit:3) = Ok ());
  (* The same loop without the delay is a combinational cycle. *)
  let d = M.Diagram.create () in
  let a = M.Diagram.add_block d M.Block.B_add in
  let one = M.Diagram.add_block d (M.Block.B_const Q.one) in
  M.Diagram.connect d ~src:a ~dst:a ~port:0;
  M.Diagram.connect d ~src:one ~dst:a ~port:1;
  match M.Diagram.topological_order d with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "combinational cycle accepted"

let test_combinational_rejects_delay () =
  match M.Convert.diagram_to_ab ~output:"ok" (counter_diagram ~limit:3) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "combinational conversion must reject delays"

let test_bmc_counter () =
  (* The counter value at instant t is t+1; ok = (c <= 3) fails first at
     instant 3. BMC with 3 steps: safe; with 4: violated. *)
  let solve steps =
    match
      M.Convert.diagram_to_ab_bmc ~steps ~output:"ok" (counter_diagram ~limit:3)
    with
    | Error e -> Alcotest.fail e
    | Ok problem -> fst (A.Engine.solve problem)
  in
  (match solve 3 with
  | A.Engine.R_unsat -> ()
  | _ -> Alcotest.fail "no violation within 3 steps");
  match solve 4 with
  | A.Engine.R_sat _ -> ()
  | _ -> Alcotest.fail "violation at step 4 expected"

let test_bmc_input_driven () =
  (* accumulator of a bounded input: s = 0 -> pre(s) + u, u in [0, 1];
     can s exceed 2.5 within k steps?  Needs at least 3 steps. *)
  let d = M.Diagram.create () in
  let u = M.Diagram.add_block d (M.Block.B_inport { name = "u"; lo = Some Q.zero; hi = Some Q.one; integer = false }) in
  let add = M.Diagram.add_block d M.Block.B_add in
  let delay = M.Diagram.add_block d (M.Block.B_delay Q.zero) in
  let cmp = M.Diagram.add_block d (M.Block.B_compare (M.Block.C_le, Q.of_decimal_string "2.5")) in
  let out = M.Diagram.add_block d (M.Block.B_outport "bounded") in
  M.Diagram.connect d ~src:delay ~dst:add ~port:0;
  M.Diagram.connect d ~src:u ~dst:add ~port:1;
  M.Diagram.connect d ~src:add ~dst:delay ~port:0;
  M.Diagram.connect d ~src:add ~dst:cmp ~port:0;
  M.Diagram.connect d ~src:cmp ~dst:out ~port:0;
  let solve steps =
    match M.Convert.diagram_to_ab_bmc ~steps ~output:"bounded" d with
    | Error e -> Alcotest.fail e
    | Ok problem -> (problem, fst (A.Engine.solve problem))
  in
  (match solve 2 with
  | _, A.Engine.R_unsat -> ()
  | _ -> Alcotest.fail "2 unit inputs cannot exceed 2.5");
  match solve 3 with
  | problem, A.Engine.R_sat sol ->
    check bool_t "witness verifies" true (A.Solution.check problem sol = Ok ());
    (* The witness drives u near 1 at every instant. *)
    let total = ref 0.0 in
    for t = 0 to 2 do
      match A.Ab_problem.arith_var_index problem (Printf.sprintf "u@%d" t) with
      | Some v -> total := !total +. A.Solution.float_env sol ~default:0.0 v
      | None -> Alcotest.fail "missing unrolled input"
    done;
    check bool_t "inputs sum past 2.5" true (!total > 2.5)
  | _, _ -> Alcotest.fail "3 steps suffice"

let test_bmc_text_roundtrip () =
  (* Delay blocks survive the textual format. *)
  let d = counter_diagram ~limit:3 in
  let text = M.Simulink_text.to_string ~name:"counter" d in
  match M.Simulink_text.parse_string text with
  | Error e -> Alcotest.fail e
  | Ok (_, d2) -> (
    match M.Convert.diagram_to_ab_bmc ~steps:4 ~output:"ok" d2 with
    | Ok problem -> (
      match fst (A.Engine.solve problem) with
      | A.Engine.R_sat _ -> ()
      | _ -> Alcotest.fail "reparsed counter must still violate at 4 steps")
    | Error e -> Alcotest.fail e)

let suite =
  suite
  @ [
      ("delay feedback validates", `Quick, test_delay_feedback_validates);
      ("combinational rejects delay", `Quick, test_combinational_rejects_delay);
      ("bmc counter", `Quick, test_bmc_counter);
      ("bmc input-driven accumulator", `Quick, test_bmc_input_driven);
      ("bmc text roundtrip", `Quick, test_bmc_text_roundtrip);
    ]
