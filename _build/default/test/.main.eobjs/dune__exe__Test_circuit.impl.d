test/test_circuit.ml: Absolver_circuit Absolver_lp Absolver_nlp Absolver_numeric Alcotest List String
