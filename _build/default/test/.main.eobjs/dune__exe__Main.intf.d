test/main.mli:
