test/test_lp.ml: Absolver_lp Absolver_numeric Alcotest Array Gen List Option Printf QCheck QCheck_alcotest
