test/test_nlp.ml: Absolver_lp Absolver_nlp Absolver_numeric Alcotest Array Float List Random
