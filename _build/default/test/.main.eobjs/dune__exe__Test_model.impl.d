test/test_model.ml: Absolver_core Absolver_model Absolver_numeric Alcotest List Option Printf String
