test/test_extra.ml: Absolver_circuit Absolver_core Absolver_lp Absolver_model Absolver_nlp Absolver_numeric Absolver_sat Alcotest Array Float List Option String
