test/test_numeric.ml: Absolver_numeric Alcotest Float List Printf QCheck QCheck_alcotest String
