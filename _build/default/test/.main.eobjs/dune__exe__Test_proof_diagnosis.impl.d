test/test_proof_diagnosis.ml: Absolver_core Absolver_lp Absolver_nlp Absolver_numeric Absolver_sat Alcotest Format Fun List Random String
