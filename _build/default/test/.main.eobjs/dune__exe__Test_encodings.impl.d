test/test_encodings.ml: Absolver_core Absolver_encodings Alcotest Array List String
