test/test_smtlib.ml: Absolver_core Absolver_numeric Absolver_smtlib Alcotest List Printf
