test/test_sat.ml: Absolver_sat Alcotest Fun List Printf Random
