test/test_core.ml: Absolver_circuit Absolver_core Absolver_lp Absolver_nlp Absolver_numeric Absolver_sat Alcotest Array Float List Option
