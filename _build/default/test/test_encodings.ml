(* Tests for the Sudoku encodings and the puzzle bank. *)

module S = Absolver_encodings.Sudoku
module P = Absolver_encodings.Puzzles
module A = Absolver_core

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let count_clues p =
  Array.fold_left
    (fun acc row -> acc + Array.fold_left (fun a d -> if d > 0 then a + 1 else a) 0 row)
    0 p

let test_parse_puzzle () =
  let text = String.concat "" (List.init 81 (fun i -> if i = 0 then "5" else ".")) in
  match S.parse text with
  | Ok p ->
    check int_t "one clue" 1 (count_clues p);
    check int_t "value" 5 p.(0).(0)
  | Error e -> Alcotest.fail e

let test_parse_errors () =
  (match S.parse "12345" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "too short accepted");
  match S.parse (String.make 81 'x') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad chars accepted"

let test_parse_print_roundtrip () =
  let _, p = List.hd P.all in
  match S.parse (S.to_string p) with
  | Ok p2 -> check bool_t "roundtrip" true (p = p2)
  | Error e -> Alcotest.fail e

let test_validity_checker () =
  let solved = P.solved_grid_of ~name:"check" in
  check bool_t "valid grid" true (S.is_complete_and_valid solved);
  let broken = Array.map Array.copy solved in
  broken.(0).(0) <- broken.(0).(1);
  check bool_t "duplicate detected" false (S.is_complete_and_valid broken);
  let incomplete = Array.map Array.copy solved in
  incomplete.(3).(3) <- 0;
  check bool_t "incomplete detected" false (S.is_complete_and_valid incomplete)

let test_bank_properties () =
  check int_t "ten instances" 10 (List.length P.all);
  List.iter
    (fun (name, puzzle) ->
      let solved = P.solved_grid_of ~name in
      check bool_t (name ^ " solvable") true (S.is_complete_and_valid solved);
      check bool_t (name ^ " clues consistent") true
        (S.respects_clues ~clues:puzzle solved);
      let expected =
        if String.length name >= 4 && String.sub name (String.length name - 4) 4 = "easy"
        then 46
        else 26
      in
      check int_t (name ^ " clue count") expected (count_clues puzzle))
    P.all

let test_bank_deterministic () =
  let p1 = P.generate ~name:"det" ~clues:30 in
  let p2 = P.generate ~name:"det" ~clues:30 in
  check bool_t "same name same puzzle" true (p1 = p2);
  let p3 = P.generate ~name:"det2" ~clues:30 in
  check bool_t "different name different puzzle" false (p1 = p3)

let test_absolver_encoding_solves () =
  List.iteri
    (fun i (name, puzzle) ->
      if i < 2 then begin
        let problem = S.absolver_problem puzzle in
        match A.Engine.solve problem with
        | A.Engine.R_sat sol, _ ->
          let grid = S.decode problem sol in
          check bool_t (name ^ " complete+valid") true (S.is_complete_and_valid grid);
          check bool_t (name ^ " clues") true (S.respects_clues ~clues:puzzle grid)
        | _ -> Alcotest.failf "%s not solved" name
      end)
    P.all

let test_baseline_encoding_structure () =
  let _, puzzle = List.hd P.all in
  let problem = S.baseline_problem puzzle in
  let stats = A.Ab_problem.stats problem in
  (* 810 disequality atoms from the 810 distinct in-group pairs, plus two
     equality halves per clue. *)
  check int_t "arith vars" 81 (A.Ab_problem.num_arith_vars problem);
  check bool_t "all linear" true (stats.A.Ab_problem.n_nonlinear = 0);
  check bool_t "plenty of atoms" true (stats.A.Ab_problem.n_linear >= 1620);
  check bool_t "validates" true (A.Ab_problem.validate problem = Ok ())

let test_unsat_puzzle () =
  (* Two identical clues in one row make the instance unsat. *)
  let _, puzzle = List.hd P.all in
  let bad = Array.map Array.copy puzzle in
  (* Find a clue and duplicate its value in the same row. *)
  let placed = ref false in
  Array.iteri
    (fun r row ->
      if not !placed then
        Array.iteri
          (fun c d ->
            if (not !placed) && d > 0 then begin
              let c' = (c + 1) mod 9 in
              bad.(r).(c') <- d;
              placed := true
            end)
          row)
    bad;
  check bool_t "clue planted" true !placed;
  match A.Engine.solve (S.absolver_problem bad) with
  | A.Engine.R_unsat, _ -> ()
  | _ -> Alcotest.fail "conflicting clues must be unsat"

let test_decode_matches_booleans () =
  (* The decoded integer grid must match the cell=digit Booleans. *)
  let _, puzzle = List.nth P.all 6 (* an easy one *) in
  let problem = S.absolver_problem puzzle in
  match A.Engine.solve problem with
  | A.Engine.R_sat sol, _ ->
    let grid = S.decode problem sol in
    check bool_t "valid" true (S.is_complete_and_valid grid)
  | _ -> Alcotest.fail "easy puzzle must solve"

let suite =
  [
    ("parse puzzle", `Quick, test_parse_puzzle);
    ("parse errors", `Quick, test_parse_errors);
    ("print/parse roundtrip", `Quick, test_parse_print_roundtrip);
    ("validity checker", `Quick, test_validity_checker);
    ("puzzle bank properties", `Quick, test_bank_properties);
    ("puzzle bank deterministic", `Quick, test_bank_deterministic);
    ("absolver encoding solves", `Quick, test_absolver_encoding_solves);
    ("baseline encoding structure", `Quick, test_baseline_encoding_structure);
    ("conflicting clues unsat", `Quick, test_unsat_puzzle);
    ("decode consistency", `Quick, test_decode_matches_booleans);
  ]
