(* Tests for the nonlinear layer: Expr, Box, HC4, Newton, Branch_prune. *)

module Q = Absolver_numeric.Rational
module I = Absolver_numeric.Interval
module E = Absolver_nlp.Expr
module Box = Absolver_nlp.Box
module Hc4 = Absolver_nlp.Hc4
module N = Absolver_nlp.Newton
module BP = Absolver_nlp.Branch_prune
module L = Absolver_lp.Linexpr

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let q = Q.of_int
let x = E.var 0
let y = E.var 1

(* ------------------------------------------------------------------ *)
(* Expr.                                                               *)

let test_expr_constant_folding () =
  check bool_t "const add" true (E.equal (E.add (E.const (q 2)) (E.const (q 3))) (E.const (q 5)));
  check bool_t "mul by zero" true (E.equal (E.mul (E.const Q.zero) x) (E.const Q.zero));
  check bool_t "mul by one" true (E.equal (E.mul (E.const Q.one) x) x);
  check bool_t "neg neg" true (E.equal (E.neg (E.neg x)) x);
  check bool_t "pow 1" true (E.equal (E.pow x 1) x);
  check bool_t "pow 0" true (E.equal (E.pow x 0) (E.const Q.one));
  check bool_t "x - 0" true (E.equal (E.sub x (E.const Q.zero)) x)

let test_expr_vars_size () =
  let e = E.add (E.mul x y) (E.div y (E.const (q 2))) in
  check bool_t "vars" true (E.vars e = [ 0; 1 ]);
  check bool_t "size positive" true (E.size e > 3)

let test_expr_eval_float () =
  let e = E.add (E.mul x y) (E.const (Q.of_decimal_string "0.5")) in
  let env v = if v = 0 then 2.0 else 3.0 in
  check (Alcotest.float 1e-12) "eval" 6.5 (E.eval_float env e)

let test_expr_eval_exact () =
  let e = E.div (E.add x y) (E.const (q 3)) in
  let env v = if v = 0 then q 1 else q 1 in
  (match E.eval_exact env e with
  | Some v -> check bool_t "exact 2/3" true (Q.equal v (Q.of_ints 2 3))
  | None -> Alcotest.fail "should be exact");
  (* Division by zero -> None. *)
  (match E.eval_exact (fun _ -> Q.zero) (E.div x y) with
  | None -> ()
  | Some _ -> Alcotest.fail "0/0 should be None");
  (* Transcendental -> None. *)
  match E.eval_exact (fun _ -> Q.one) (E.sin x) with
  | None -> ()
  | Some _ -> Alcotest.fail "sin leaves the rationals"

let test_expr_linearize () =
  check bool_t "linear yes" true (E.is_linear (E.add (E.mul (E.const (q 2)) x) y));
  check bool_t "product no" false (E.is_linear (E.mul x y));
  check bool_t "div by const yes" true (E.is_linear (E.div x (E.const (q 2))));
  check bool_t "div by var no" false (E.is_linear (E.div x y));
  check bool_t "sin no" false (E.is_linear (E.sin x));
  match E.linearize (E.add (E.mul (E.const (q 2)) x) (E.const (q 7))) with
  | Some le ->
    check bool_t "coeff" true (Q.equal (L.coeff le 0) (q 2));
    check bool_t "const" true (Q.equal (L.const le) (q 7))
  | None -> Alcotest.fail "should linearize"

let test_expr_deriv () =
  (* d/dx (x^2 * y + sin x) = 2xy + cos x, checked numerically. *)
  let e = E.add (E.mul (E.pow x 2) y) (E.sin x) in
  let d = E.deriv e 0 in
  let env v = if v = 0 then 1.3 else 2.7 in
  let expected = (2.0 *. 1.3 *. 2.7) +. Float.cos 1.3 in
  check (Alcotest.float 1e-9) "derivative" expected (E.eval_float env d)

let test_expr_deriv_numeric_property () =
  (* Finite differences agree with symbolic derivatives. *)
  let exprs =
    [
      E.mul x y;
      E.div x (E.add y (E.const (q 3)));
      E.exp (E.mul (E.const (Q.of_decimal_string "0.3")) x);
      E.sqrt (E.add (E.pow x 2) (E.const Q.one));
      E.cos (E.mul x y);
      E.log (E.add (E.pow y 2) (E.const (q 2)));
    ]
  in
  List.iter
    (fun e ->
      let d = E.deriv e 0 in
      let at x0 = E.eval_float (fun v -> if v = 0 then x0 else 0.7) in
      let h = 1e-6 in
      let numeric = (at (1.1 +. h) e -. at (1.1 -. h) e) /. (2.0 *. h) in
      let symbolic = at 1.1 d in
      if Float.abs (numeric -. symbolic) > 1e-4 *. (1.0 +. Float.abs symbolic)
      then
        Alcotest.failf "derivative mismatch: %s num=%f sym=%f" (E.to_string e)
          numeric symbolic)
    exprs

let test_expr_negate_rel () =
  let r = { E.expr = x; op = L.Le; tag = 0 } in
  (match E.negate_rel r with
  | [ { E.op = L.Gt; _ } ] -> ()
  | _ -> Alcotest.fail "negate le");
  match E.negate_rel { r with E.op = L.Eq } with
  | [ { E.op = L.Lt; _ }; { E.op = L.Gt; _ } ] -> ()
  | _ -> Alcotest.fail "eq splits"

let test_expr_rel_certificates () =
  let box v = if v = 0 then I.make 1.0 2.0 else I.make 3.0 4.0 in
  (* x*y in [3,8]: certainly >= 2, certainly not <= 2. *)
  let r_ge = { E.expr = E.sub (E.mul x y) (E.const (q 2)); op = L.Ge; tag = 0 } in
  check bool_t "certainly holds" true (E.certainly_holds box r_ge);
  let r_le = { r_ge with E.op = L.Le } in
  check bool_t "certainly violated" true (E.certainly_violated box r_le);
  (* x*y <= 5 is neither certain nor refuted over the box. *)
  let r_mid = { E.expr = E.sub (E.mul x y) (E.const (q 5)); op = L.Le; tag = 0 } in
  check bool_t "uncertain holds" false (E.certainly_holds box r_mid);
  check bool_t "uncertain violated" false (E.certainly_violated box r_mid)

(* ------------------------------------------------------------------ *)
(* Box.                                                                *)

let test_box_ops () =
  let b = Box.of_bounds [ (0, I.make 0.0 4.0); (1, I.make 1.0 2.0) ] 2 in
  check bool_t "not empty" false (Box.is_empty b);
  check int_t "widest" 0 (Box.widest_var b);
  check (Alcotest.float 0.0) "max width" 4.0 (Box.max_width b);
  let m = Box.midpoint b in
  check (Alcotest.float 1e-12) "mid x" 2.0 m.(0);
  Box.set b 1 I.empty;
  check bool_t "now empty" true (Box.is_empty b)

(* ------------------------------------------------------------------ *)
(* HC4.                                                                *)

let test_hc4_contracts_linear () =
  (* x + y <= 2 with x,y in [0,10]: both shrink to [0,2]. *)
  let b = Box.of_bounds [ (0, I.make 0.0 10.0); (1, I.make 0.0 10.0) ] 2 in
  let rel = { E.expr = E.sub (E.add x y) (E.const (q 2)); op = L.Le; tag = 0 } in
  check bool_t "alive" true (Hc4.revise b rel);
  check bool_t "x narrowed" true ((Box.get b 0).I.hi <= 2.0 +. 1e-9);
  check bool_t "y narrowed" true ((Box.get b 1).I.hi <= 2.0 +. 1e-9)

let test_hc4_empties_contradiction () =
  let b = Box.of_bounds [ (0, I.make 0.0 1.0) ] 1 in
  let rel = { E.expr = E.sub x (E.const (q 5)); op = L.Ge; tag = 0 } in
  check bool_t "contradiction" false (Hc4.revise b rel)

let test_hc4_sqrt_domain () =
  (* sqrt(x) >= 2 forces x >= 4. *)
  let b = Box.of_bounds [ (0, I.make 0.0 100.0) ] 1 in
  let rel = { E.expr = E.sub (E.sqrt x) (E.const (q 2)); op = L.Ge; tag = 0 } in
  check bool_t "alive" true (Hc4.contract b [ rel ]);
  check bool_t "x >= 4" true ((Box.get b 0).I.lo >= 3.999)

let test_hc4_exp_log_inverse () =
  (* exp(x) <= 1 forces x <= 0. *)
  let b = Box.of_bounds [ (0, I.make (-5.0) 5.0) ] 1 in
  let rel = { E.expr = E.sub (E.exp x) (E.const Q.one); op = L.Le; tag = 0 } in
  check bool_t "alive" true (Hc4.contract b [ rel ]);
  check bool_t "x <= 0" true ((Box.get b 0).I.hi <= 1e-9)

let test_hc4_pow_even_projection () =
  (* x^2 <= 4 narrows x to [-2,2]. *)
  let b = Box.of_bounds [ (0, I.make (-10.0) 10.0) ] 1 in
  let rel = { E.expr = E.sub (E.pow x 2) (E.const (q 4)); op = L.Le; tag = 0 } in
  check bool_t "alive" true (Hc4.contract b [ rel ]);
  let iv = Box.get b 0 in
  check bool_t "narrowed" true (iv.I.lo >= -2.001 && iv.I.hi <= 2.001)

let test_hc4_never_loses_solutions () =
  (* Property: contraction keeps any point that satisfies the relations. *)
  let st = Random.State.make [| 99 |] in
  for _ = 1 to 200 do
    let px = Random.State.float st 4.0 -. 2.0 in
    let py = Random.State.float st 4.0 -. 2.0 in
    (* Build a couple of relations satisfied at (px, py). *)
    let e1 = E.add (E.mul x y) (E.pow x 2) in
    let v1 = E.eval_float (fun v -> if v = 0 then px else py) e1 in
    let r1 =
      { E.expr = E.sub e1 (E.const (Q.of_float (v1 +. 0.5))); op = L.Le; tag = 0 }
    in
    let e2 = E.sub x y in
    let v2 = px -. py in
    let r2 =
      { E.expr = E.sub e2 (E.const (Q.of_float (v2 -. 0.5))); op = L.Ge; tag = 1 }
    in
    let b = Box.of_bounds [ (0, I.make (-2.0) 2.0); (1, I.make (-2.0) 2.0) ] 2 in
    let alive = Hc4.contract b [ r1; r2 ] in
    if not (alive && I.mem px (Box.get b 0) && I.mem py (Box.get b 1)) then
      Alcotest.failf "lost solution (%f, %f)" px py
  done

(* ------------------------------------------------------------------ *)
(* Newton.                                                             *)

let test_newton_contracts_sqrt2 () =
  (* x^2 - 2 = 0 on [1, 2]. *)
  let f = E.sub (E.pow x 2) (E.const (q 2)) in
  let iv = N.contract f ~var:0 (I.make 1.0 2.0) in
  check bool_t "contains sqrt2" true (I.mem (Float.sqrt 2.0) iv);
  check bool_t "narrow" true (I.width iv < 0.5)

let test_newton_no_root () =
  (* x^2 + 1 = 0 has no real root: the interval must empty out. *)
  let f = E.add (E.pow x 2) (E.const Q.one) in
  let iv = N.contract f ~var:0 (I.make (-10.0) 10.0) in
  check bool_t "no root left or tiny" true (I.is_empty iv || I.width iv < 21.0)

let test_newton_proves_root () =
  let f = E.sub (E.pow x 2) (E.const (q 2)) in
  check bool_t "existence certificate" true (N.proves_root f ~var:0 (I.make 1.3 1.5))

(* ------------------------------------------------------------------ *)
(* Branch and prune.                                                   *)

let solve_bp ?(config = BP.default_config) nvars bounds rels =
  let box = Box.of_bounds bounds nvars in
  fst (BP.solve ~config ~nvars ~box rels)

let test_bp_circle_line_sat () =
  let rels =
    [
      { E.expr = E.sub (E.add (E.pow x 2) (E.pow y 2)) (E.const Q.one); op = L.Le; tag = 0 };
      { E.expr = E.sub (E.const (Q.of_decimal_string "1.2")) (E.add x y); op = L.Le; tag = 1 };
    ]
  in
  match solve_bp 2 [ (0, I.make (-2.0) 2.0); (1, I.make (-2.0) 2.0) ] rels with
  | BP.Sat p | BP.Approx_sat p ->
    check bool_t "witness feasible" true
      (List.for_all (E.holds_float ~tol:1e-6 (fun v -> p.(v))) rels)
  | BP.Unsat | BP.Unknown -> Alcotest.fail "expected sat"

let test_bp_circle_line_unsat () =
  let rels =
    [
      { E.expr = E.sub (E.add (E.pow x 2) (E.pow y 2)) (E.const Q.one); op = L.Le; tag = 0 };
      { E.expr = E.sub (E.const (Q.of_decimal_string "1.5")) (E.add x y); op = L.Le; tag = 1 };
    ]
  in
  match solve_bp 2 [ (0, I.make (-2.0) 2.0); (1, I.make (-2.0) 2.0) ] rels with
  | BP.Unsat -> ()
  | BP.Sat _ | BP.Approx_sat _ | BP.Unknown -> Alcotest.fail "expected unsat"

let test_bp_equality_sqrt2 () =
  let rels = [ { E.expr = E.sub (E.pow x 2) (E.const (q 2)); op = L.Eq; tag = 0 } ] in
  match solve_bp 1 [ (0, I.make 0.0 2.0) ] rels with
  | BP.Sat p | BP.Approx_sat p ->
    check (Alcotest.float 1e-5) "sqrt 2" (Float.sqrt 2.0) p.(0)
  | BP.Unsat | BP.Unknown -> Alcotest.fail "expected a root"

let test_bp_transcendental () =
  (* exp(x) = 3 on [-10, 10]. *)
  let rels = [ { E.expr = E.sub (E.exp x) (E.const (q 3)); op = L.Eq; tag = 0 } ] in
  (match solve_bp 1 [ (0, I.make (-10.0) 10.0) ] rels with
  | BP.Sat p | BP.Approx_sat p -> check (Alcotest.float 1e-5) "ln 3" (Float.log 3.0) p.(0)
  | BP.Unsat | BP.Unknown -> Alcotest.fail "expected a root");
  (* exp(x) = -1: no solution. *)
  let rels = [ { E.expr = E.add (E.exp x) (E.const Q.one); op = L.Eq; tag = 0 } ] in
  match solve_bp 1 [ (0, I.make (-50.0) 50.0) ] rels with
  | BP.Unsat -> ()
  | BP.Sat _ | BP.Approx_sat _ | BP.Unknown -> Alcotest.fail "expected unsat"

let test_bp_node_budget () =
  (* A thin feasible sliver with a tiny budget and no sampling: Unknown. *)
  let rels =
    [
      { E.expr = E.sub (E.mul x y) (E.const Q.one); op = L.Ge; tag = 0 };
      { E.expr = E.sub (E.mul x y) (Q.of_decimal_string "1.0000001" |> E.const); op = L.Le; tag = 1 };
    ]
  in
  let config =
    { BP.default_config with BP.max_nodes = 3; samples_per_node = 0; root_samples = 0 }
  in
  match solve_bp ~config 2 [ (0, I.make 0.5 2.0); (1, I.make 0.5 2.0) ] rels with
  | BP.Unknown | BP.Approx_sat _ -> ()
  | BP.Sat _ -> () (* a certificate this early is fine too *)
  | BP.Unsat -> Alcotest.fail "must not prove unsat within 3 nodes"

let test_bp_sat_claims_verified () =
  (* Property-style: on random conjunctions of inequalities over a box,
     any Sat answer's witness must satisfy everything rigorously. *)
  let st = Random.State.make [| 5 |] in
  for _ = 1 to 50 do
    let mk_rel tag =
      let e =
        match Random.State.int st 4 with
        | 0 -> E.add (E.mul x y) (E.neg (E.pow x 2))
        | 1 -> E.sub (E.pow x 2) (E.mul (E.const (q 2)) y)
        | 2 -> E.add (E.sin x) y
        | _ -> E.div x (E.add (E.pow y 2) (E.const Q.one))
      in
      let c = Q.of_float (Random.State.float st 4.0 -. 2.0) in
      let op = if Random.State.bool st then L.Le else L.Ge in
      { E.expr = E.sub e (E.const c); op; tag }
    in
    let rels = List.init (1 + Random.State.int st 3) mk_rel in
    let config = { BP.default_config with BP.max_nodes = 2000 } in
    match solve_bp ~config 2 [ (0, I.make (-3.0) 3.0); (1, I.make (-3.0) 3.0) ] rels with
    | BP.Sat p ->
      if not (List.for_all (fun r -> E.certainly_holds (Box.point_env p) r) rels)
      then Alcotest.fail "rigorous witness fails"
    | BP.Approx_sat p ->
      if not (List.for_all (E.holds_float ~tol:1e-5 (fun v -> p.(v))) rels) then
        Alcotest.fail "approximate witness fails"
    | BP.Unsat | BP.Unknown -> ()
  done

let suite =
  [
    ("expr constant folding", `Quick, test_expr_constant_folding);
    ("expr vars and size", `Quick, test_expr_vars_size);
    ("expr eval float", `Quick, test_expr_eval_float);
    ("expr eval exact", `Quick, test_expr_eval_exact);
    ("expr linearize", `Quick, test_expr_linearize);
    ("expr derivative", `Quick, test_expr_deriv);
    ("expr derivative vs finite differences", `Quick, test_expr_deriv_numeric_property);
    ("expr negate_rel", `Quick, test_expr_negate_rel);
    ("expr interval certificates", `Quick, test_expr_rel_certificates);
    ("box operations", `Quick, test_box_ops);
    ("hc4 contracts linear", `Quick, test_hc4_contracts_linear);
    ("hc4 detects contradiction", `Quick, test_hc4_empties_contradiction);
    ("hc4 sqrt backward", `Quick, test_hc4_sqrt_domain);
    ("hc4 exp/log backward", `Quick, test_hc4_exp_log_inverse);
    ("hc4 even power backward", `Quick, test_hc4_pow_even_projection);
    ("hc4 preserves solutions", `Quick, test_hc4_never_loses_solutions);
    ("newton contracts to sqrt2", `Quick, test_newton_contracts_sqrt2);
    ("newton no real root", `Quick, test_newton_no_root);
    ("newton existence certificate", `Quick, test_newton_proves_root);
    ("branch-prune circle/line sat", `Quick, test_bp_circle_line_sat);
    ("branch-prune circle/line unsat", `Quick, test_bp_circle_line_unsat);
    ("branch-prune sqrt2 equality", `Quick, test_bp_equality_sqrt2);
    ("branch-prune transcendental", `Quick, test_bp_transcendental);
    ("branch-prune node budget", `Quick, test_bp_node_budget);
    ("branch-prune witnesses verified", `Quick, test_bp_sat_claims_verified);
  ]
