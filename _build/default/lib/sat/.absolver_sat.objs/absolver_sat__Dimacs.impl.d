lib/sat/dimacs.ml: Buffer Cdcl List Printf String Types
