lib/sat/types.ml: Format
