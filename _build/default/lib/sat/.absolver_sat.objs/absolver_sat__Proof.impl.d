lib/sat/proof.ml: Cdcl Format List Types
