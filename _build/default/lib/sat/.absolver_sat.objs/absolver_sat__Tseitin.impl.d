lib/sat/tseitin.ml: Format Hashtbl List Types
