lib/sat/all_sat.mli: Cdcl Types
