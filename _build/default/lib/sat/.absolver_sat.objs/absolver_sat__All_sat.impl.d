lib/sat/all_sat.ml: Array Cdcl Fun List Types
