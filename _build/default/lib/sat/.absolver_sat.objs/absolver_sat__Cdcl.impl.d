lib/sat/cdcl.ml: Array Bool List Types Vec
