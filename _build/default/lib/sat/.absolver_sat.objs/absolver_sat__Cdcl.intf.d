lib/sat/cdcl.mli: Types
