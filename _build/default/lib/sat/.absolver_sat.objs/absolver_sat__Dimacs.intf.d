lib/sat/dimacs.mli: Cdcl Types
