lib/sat/vec.mli:
