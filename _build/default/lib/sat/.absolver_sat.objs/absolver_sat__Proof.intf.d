lib/sat/proof.mli: Cdcl Format Types
