lib/sat/tseitin.mli: Format Types
