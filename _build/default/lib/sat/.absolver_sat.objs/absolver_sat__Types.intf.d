lib/sat/types.mli: Format
