type trace = Types.lit list list

let record solver =
  let cell = ref [] in
  Cdcl.set_learnt_hook solver (fun lits -> cell := lits :: !cell);
  cell

type verdict = Valid_unsat | Valid_partial | Invalid of int

let pp_verdict fmt = function
  | Valid_unsat -> Format.pp_print_string fmt "valid (unsat established)"
  | Valid_partial -> Format.pp_print_string fmt "valid (partial trace)"
  | Invalid i -> Format.fprintf fmt "invalid at step %d" i

(* Each step is checked as an entailment: original + earlier lemmas +
   (negation of the lemma) must be unsatisfiable.  Entailment subsumes
   RUP, so every clause a CDCL solver can learn passes. *)
let check ?(step_budget = 100_000) ~num_vars original trace =
  (* The recording hook prepends, so the cell holds newest-first. *)
  let trace = List.rev trace in
  let checker = Cdcl.create () in
  Cdcl.ensure_vars checker num_vars;
  List.iter (Cdcl.add_clause checker) original;
  let rec verify i = function
    | [] -> Valid_partial
    | [] :: _ ->
      (* Deriving the empty clause: the accumulated set itself must be
         unsatisfiable. *)
      if Cdcl.solve ~max_conflicts:step_budget checker = Types.Unsat then
        Valid_unsat
      else Invalid i
    | lemma :: rest -> (
      let assumptions = List.map Types.negate lemma in
      match Cdcl.solve ~assumptions ~max_conflicts:step_budget checker with
      | Types.Unsat ->
        if Cdcl.is_unsat checker then
          (* Globally unsat already: the remaining lemmas are entailed. *)
          if List.exists (fun c -> c = []) rest then Valid_unsat
          else Valid_partial
        else begin
          Cdcl.add_clause checker lemma;
          verify (i + 1) rest
        end
      | Types.Sat | Types.Unknown -> Invalid i)
  in
  verify 0 trace
