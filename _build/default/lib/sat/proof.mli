(** Clausal proof traces and an independent certificate checker.

    {!Cdcl.set_learnt_hook} produces a DRUP-style trace: the sequence of
    learnt clauses, ending with the empty clause when unsatisfiability is
    established. {!check} verifies such a trace against the original
    formula step by step — each learnt clause must be entailed by the
    original clauses plus the previously verified ones — giving an
    independent (if slower) certification of UNSAT answers, which the
    test suite uses to cross-validate the solver on hard instances. *)

type trace = Types.lit list list
(** Learnt clauses in emission order; an UNSAT trace ends with []. *)

val record : Cdcl.t -> trace ref
(** Install a recording hook on the solver and return the trace cell
    (newest clause first, as emitted). Call before solving; pass the
    cell's final contents to {!check}. *)

type verdict =
  | Valid_unsat (** trace ends in the empty clause and every step checks *)
  | Valid_partial
      (** every step checks but the empty clause was never derived *)
  | Invalid of int (** step index that failed entailment *)

val check :
  ?step_budget:int -> num_vars:int -> Types.lit list list -> trace -> verdict
(** [check ~num_vars original trace] with [trace] newest-first as produced
    by {!record}. [step_budget] bounds the conflicts spent on each
    entailment check (default 100000). *)

val pp_verdict : Format.formatter -> verdict -> unit
