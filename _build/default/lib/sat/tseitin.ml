type formula =
  | True
  | False
  | Atom of int
  | Not of formula
  | And of formula list
  | Or of formula list
  | Implies of formula * formula
  | Iff of formula * formula
  | Xor of formula * formula

let atom i = Atom i
let not_ f = match f with Not g -> g | True -> False | False -> True | _ -> Not f

let and_ fs =
  let fs = List.filter (fun f -> f <> True) fs in
  if List.mem False fs then False
  else match fs with [] -> True | [ f ] -> f | _ -> And fs

let or_ fs =
  let fs = List.filter (fun f -> f <> False) fs in
  if List.mem True fs then True
  else match fs with [] -> False | [ f ] -> f | _ -> Or fs

let implies a b = or_ [ not_ a; b ]
let iff a b = Iff (a, b)
let xor a b = Xor (a, b)

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Atom i -> Format.fprintf fmt "v%d" i
  | Not f -> Format.fprintf fmt "!(%a)" pp f
  | And fs -> pp_nary fmt "and" fs
  | Or fs -> pp_nary fmt "or" fs
  | Implies (a, b) -> Format.fprintf fmt "(%a => %a)" pp a pp b
  | Iff (a, b) -> Format.fprintf fmt "(%a <=> %a)" pp a pp b
  | Xor (a, b) -> Format.fprintf fmt "(%a xor %a)" pp a pp b

and pp_nary fmt op fs =
  Format.fprintf fmt "(%s" op;
  List.iter (fun f -> Format.fprintf fmt " %a" pp f) fs;
  Format.fprintf fmt ")"

let rec eval env = function
  | True -> true
  | False -> false
  | Atom i -> env i
  | Not f -> not (eval env f)
  | And fs -> List.for_all (eval env) fs
  | Or fs -> List.exists (eval env) fs
  | Implies (a, b) -> (not (eval env a)) || eval env b
  | Iff (a, b) -> eval env a = eval env b
  | Xor (a, b) -> eval env a <> eval env b

type result = {
  root : Types.lit;
  clauses : Types.lit list list;
  num_vars : int;
}

(* Formulas built by sharing subterms form DAGs; encoding must respect the
   sharing or tree recursion explodes exponentially.  Memoization is keyed
   on physical identity (Hashtbl.hash is depth-bounded, hence O(1) and
   consistent with [==]). *)
module Phys_tbl = Hashtbl.Make (struct
  type t = formula

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type state = {
  mutable next : int;
  mutable acc : Types.lit list list;
  (* One fixed variable forced true, used to encode the constants. *)
  true_var : int;
  memo : Types.lit Phys_tbl.t;
}

let fresh st =
  let v = st.next in
  st.next <- v + 1;
  v

let add st c = st.acc <- c :: st.acc

(* Returns a literal equivalent to the subformula. *)
let rec encode st f =
  match Phys_tbl.find_opt st.memo f with
  | Some l -> l
  | None ->
    let l = encode_uncached st f in
    Phys_tbl.add st.memo f l;
    l

and encode_uncached st f =
  match f with
  | True -> Types.pos st.true_var
  | False -> Types.neg_of_var st.true_var
  | Atom i -> Types.pos i
  | Not g -> Types.negate (encode st g)
  | And fs ->
    let lits = List.map (encode st) fs in
    let d = Types.pos (fresh st) in
    (* d <-> /\ lits *)
    List.iter (fun l -> add st [ Types.negate d; l ]) lits;
    add st (d :: List.map Types.negate lits);
    d
  | Or fs ->
    let lits = List.map (encode st) fs in
    let d = Types.pos (fresh st) in
    List.iter (fun l -> add st [ d; Types.negate l ]) lits;
    add st (Types.negate d :: lits);
    d
  | Implies (a, b) -> encode st (Or [ Not a; b ])
  | Iff (a, b) ->
    let la = encode st a and lb = encode st b in
    let d = Types.pos (fresh st) in
    add st [ Types.negate d; Types.negate la; lb ];
    add st [ Types.negate d; la; Types.negate lb ];
    add st [ d; la; lb ];
    add st [ d; Types.negate la; Types.negate lb ];
    d
  | Xor (a, b) -> encode st (Not (Iff (a, b)))

let to_cnf ~num_vars f =
  let st =
    {
      next = num_vars + 1;
      acc = [];
      true_var = num_vars;
      memo = Phys_tbl.create 64;
    }
  in
  add st [ Types.pos st.true_var ];
  let root = encode st f in
  { root; clauses = List.rev st.acc; num_vars = st.next }

let assert_cnf ~num_vars f =
  let r = to_cnf ~num_vars f in
  ([ r.root ] :: r.clauses, r.num_vars)
