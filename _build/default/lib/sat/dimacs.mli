(** Reading and writing plain DIMACS CNF.

    The extended format of the paper (Fig. 2) lives in
    [Absolver_core.Dimacs_ext]; this module handles the Boolean core, which
    any off-the-shelf SAT solver also understands — the compatibility
    property the paper's input language is designed around. *)

type cnf = {
  num_vars : int;
  clauses : Types.lit list list;
  comments : string list; (* comment lines, without the leading "c " *)
}

val parse_string : string -> (cnf, string) result
val parse_file : string -> (cnf, string) result
val to_string : cnf -> string
val load_into : Cdcl.t -> cnf -> unit
