type cnf = {
  num_vars : int;
  clauses : Types.lit list list;
  comments : string list;
}

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let num_vars = ref 0 in
  let declared_clauses = ref (-1) in
  let clauses = ref [] in
  let comments = ref [] in
  let current = ref [] in
  let error = ref None in
  let set_error msg = if !error = None then error := Some msg in
  let handle_line line_no line =
    let line = String.trim line in
    if line = "" then ()
    else if line.[0] = 'c' then begin
      let body =
        if String.length line >= 2 && line.[1] = ' ' then
          String.sub line 2 (String.length line - 2)
        else String.sub line 1 (String.length line - 1)
      in
      comments := body :: !comments
    end
    else if line.[0] = 'p' then begin
      match split_ws line with
      | [ "p"; "cnf"; v; c ] -> (
        match (int_of_string_opt v, int_of_string_opt c) with
        | Some v, Some c ->
          num_vars := v;
          declared_clauses := c
        | _ -> set_error (Printf.sprintf "line %d: malformed problem line" line_no))
      | _ -> set_error (Printf.sprintf "line %d: malformed problem line" line_no)
    end
    else
      List.iter
        (fun tok ->
          match int_of_string_opt tok with
          | None -> set_error (Printf.sprintf "line %d: bad literal %S" line_no tok)
          | Some 0 ->
            clauses := List.rev !current :: !clauses;
            current := []
          | Some n ->
            if abs n > !num_vars then num_vars := abs n;
            current := Types.of_dimacs n :: !current)
        (split_ws line)
  in
  List.iteri (fun i line -> handle_line (i + 1) line) lines;
  if !current <> [] then clauses := List.rev !current :: !clauses;
  match !error with
  | Some msg -> Error msg
  | None ->
    Ok { num_vars = !num_vars; clauses = List.rev !clauses; comments = List.rev !comments }

let parse_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    parse_string content

let to_string cnf =
  let buf = Buffer.create 1024 in
  List.iter (fun c -> Buffer.add_string buf ("c " ^ c ^ "\n")) cnf.comments;
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" cnf.num_vars (List.length cnf.clauses));
  List.iter
    (fun clause ->
      List.iter
        (fun l -> Buffer.add_string buf (string_of_int (Types.to_dimacs l) ^ " "))
        clause;
      Buffer.add_string buf "0\n")
    cnf.clauses;
  Buffer.contents buf

let load_into solver cnf =
  Cdcl.ensure_vars solver cnf.num_vars;
  List.iter (Cdcl.add_clause solver) cnf.clauses
