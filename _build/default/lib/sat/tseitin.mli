(** Tseitin transformation of Boolean formulas to CNF.

    Used by the model front end (logic blocks of Simulink diagrams become
    gate clauses) and by the SMT-LIB translation (arbitrary Boolean
    structure over theory atoms). *)

type formula =
  | True
  | False
  | Atom of int (** An externally-managed variable. *)
  | Not of formula
  | And of formula list
  | Or of formula list
  | Implies of formula * formula
  | Iff of formula * formula
  | Xor of formula * formula

val atom : int -> formula
val not_ : formula -> formula
val and_ : formula list -> formula
val or_ : formula list -> formula
val implies : formula -> formula -> formula
val iff : formula -> formula -> formula
val xor : formula -> formula -> formula

val pp : Format.formatter -> formula -> unit

val eval : (int -> bool) -> formula -> bool

type result = {
  root : Types.lit;
  clauses : Types.lit list list;
  num_vars : int; (** Total variables after adding the definitional ones. *)
}

val to_cnf : num_vars:int -> formula -> result
(** [to_cnf ~num_vars f] converts [f] to equisatisfiable clauses. Atoms
    must be in [0 .. num_vars-1]; fresh definitional variables are
    allocated from [num_vars] upward. The returned clauses do {e not}
    assert the root: callers add [[result.root]] to require the formula,
    which lets them also assert its negation or embed it in a larger
    context. *)

val assert_cnf : num_vars:int -> formula -> Types.lit list list * int
(** Convenience: clauses that assert the formula, and the new variable
    count. *)
