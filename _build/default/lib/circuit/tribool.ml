type t = True | False | Unknown

let of_bool b = if b then True else False
let to_bool_opt = function True -> Some true | False -> Some false | Unknown -> None
let not_ = function True -> False | False -> True | Unknown -> Unknown

let and_ a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, True -> True
  | True, Unknown | Unknown, True | Unknown, Unknown -> Unknown

let or_ a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, False -> False
  | False, Unknown | Unknown, False | Unknown, Unknown -> Unknown

let and_list l = List.fold_left and_ True l
let or_list l = List.fold_left or_ False l

let xor a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> Unknown
  | x, y -> of_bool (x <> y)

let iff a b = not_ (xor a b)
let implies a b = or_ (not_ a) b
let equal (a : t) b = a = b
let is_known = function Unknown -> false | True | False -> true
let to_string = function True -> "tt" | False -> "ff" | Unknown -> "?"
let pp fmt t = Format.pp_print_string fmt (to_string t)
