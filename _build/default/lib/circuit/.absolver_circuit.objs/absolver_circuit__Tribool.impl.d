lib/circuit/tribool.ml: Format List
