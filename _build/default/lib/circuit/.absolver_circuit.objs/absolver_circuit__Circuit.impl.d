lib/circuit/circuit.ml: Absolver_lp Absolver_nlp Absolver_numeric Array Buffer Format Hashtbl List Option Printf String Tribool
