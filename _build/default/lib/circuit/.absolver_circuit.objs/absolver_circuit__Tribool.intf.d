lib/circuit/tribool.mli: Format
