lib/circuit/circuit.mli: Absolver_lp Absolver_nlp Absolver_numeric Tribool
