(** ABSOLVER's core data structure (paper Sec. 4, Fig. 5): an integrated
    circuit in which Boolean and arithmetic operations are gates taking
    one input (negation), a pair (arithmetic comparison) or arbitrarily
    many inputs (conjunction/disjunction). Boolean variables are the input
    pins; the single output pin carries the formula's truth value in
    3-valued logic — [?] signalling that further solver treatment is
    needed. *)

module Q = Absolver_numeric.Rational
module Expr = Absolver_nlp.Expr

type gate =
  | G_input of int (** Boolean input pin (variable index). *)
  | G_const of bool
  | G_not of node
  | G_and of node list
  | G_or of node list
  | G_cmp of Expr.t * Absolver_lp.Linexpr.op
      (** Arithmetic comparison gate [e op 0]; its inputs are the
          arithmetic variables of [e]. *)

and node = private { id : int; gate : gate }

type t
(** A circuit: shared nodes plus a distinguished output pin. *)

(** {1 Construction} *)

type builder

val builder : unit -> builder
val input : builder -> int -> node
val const : builder -> bool -> node
val not_ : builder -> node -> node
val and_ : builder -> node list -> node
val or_ : builder -> node list -> node
val cmp : builder -> Expr.t -> Absolver_lp.Linexpr.op -> node
val seal : builder -> output:node -> t

(** {1 Observation} *)

val output : t -> node
val size : t -> int
(** Number of distinct gates (nodes are hash-consed per builder). *)

val boolean_inputs : t -> int list
val arithmetic_vars : t -> int list
val comparisons : t -> (node * Expr.t * Absolver_lp.Linexpr.op) list

(** {1 Evaluation} *)

val eval :
  bool_env:(int -> Tribool.t) -> arith_env:(int -> Q.t option) -> t -> Tribool.t
(** 3-valued evaluation under partial assignments: an unassigned Boolean
    pin or a comparison over unassigned arithmetic variables contributes
    [?]. *)

val eval_node :
  bool_env:(int -> Tribool.t) -> arith_env:(int -> Q.t option) -> node -> Tribool.t

(** {1 Export} *)

val to_dot : ?bool_name:(int -> string) -> ?arith_name:(int -> string) -> t -> string
(** GraphViz rendering of the internal representation (cf. paper Fig. 5). *)
