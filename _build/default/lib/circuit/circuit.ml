module Q = Absolver_numeric.Rational
module Expr = Absolver_nlp.Expr
module Linexpr = Absolver_lp.Linexpr

type gate =
  | G_input of int
  | G_const of bool
  | G_not of node
  | G_and of node list
  | G_or of node list
  | G_cmp of Expr.t * Linexpr.op

and node = { id : int; gate : gate }

type builder = {
  mutable next_id : int;
  mutable nodes : node list; (* newest first *)
  (* Hash-consing on a structural key of the gate (children by id). *)
  table : (string, node) Hashtbl.t;
}

type t = { output : node; all : node array }

let builder () = { next_id = 0; nodes = []; table = Hashtbl.create 64 }

let key_of_gate = function
  | G_input v -> "i" ^ string_of_int v
  | G_const b -> if b then "t" else "f"
  | G_not n -> "n" ^ string_of_int n.id
  | G_and ns -> "a" ^ String.concat "," (List.map (fun n -> string_of_int n.id) ns)
  | G_or ns -> "o" ^ String.concat "," (List.map (fun n -> string_of_int n.id) ns)
  | G_cmp (e, op) ->
    Format.asprintf "c%a|%s" Linexpr.pp_op op (Expr.to_string e)

let mk b gate =
  let key = key_of_gate gate in
  match Hashtbl.find_opt b.table key with
  | Some n -> n
  | None ->
    let n = { id = b.next_id; gate } in
    b.next_id <- n.id + 1;
    b.nodes <- n :: b.nodes;
    Hashtbl.add b.table key n;
    n

let input b v = mk b (G_input v)
let const b v = mk b (G_const v)
let not_ b n = mk b (G_not n)

let and_ b ns =
  match ns with [ n ] -> n | [] -> const b true | _ -> mk b (G_and ns)

let or_ b ns =
  match ns with [ n ] -> n | [] -> const b false | _ -> mk b (G_or ns)

let cmp b e op = mk b (G_cmp (e, op))

let seal b ~output = { output; all = Array.of_list (List.rev b.nodes) }

let output t = t.output
let size t = Array.length t.all

let boolean_inputs t =
  Array.to_list t.all
  |> List.filter_map (fun n -> match n.gate with G_input v -> Some v | _ -> None)
  |> List.sort_uniq compare

let arithmetic_vars t =
  Array.to_list t.all
  |> List.concat_map (fun n ->
       match n.gate with G_cmp (e, _) -> Expr.vars e | _ -> [])
  |> List.sort_uniq compare

let comparisons t =
  Array.to_list t.all
  |> List.filter_map (fun n ->
       match n.gate with G_cmp (e, op) -> Some (n, e, op) | _ -> None)

let eval_cmp arith_env e op =
  let env v = arith_env v in
  let all_known = List.for_all (fun v -> env v <> None) (Expr.vars e) in
  if not all_known then Tribool.Unknown
  else
    match Expr.eval_exact (fun v -> Option.get (env v)) e with
    | None -> Tribool.Unknown (* outside the rationals: defer to solvers *)
    | Some q -> (
      let s = Q.sign q in
      Tribool.of_bool
        (match op with
        | Linexpr.Le -> s <= 0
        | Linexpr.Lt -> s < 0
        | Linexpr.Ge -> s >= 0
        | Linexpr.Gt -> s > 0
        | Linexpr.Eq -> s = 0))

let rec eval_node ~bool_env ~arith_env n =
  match n.gate with
  | G_input v -> bool_env v
  | G_const b -> Tribool.of_bool b
  | G_not m -> Tribool.not_ (eval_node ~bool_env ~arith_env m)
  | G_and ms -> Tribool.and_list (List.map (eval_node ~bool_env ~arith_env) ms)
  | G_or ms -> Tribool.or_list (List.map (eval_node ~bool_env ~arith_env) ms)
  | G_cmp (e, op) -> eval_cmp arith_env e op

let eval ~bool_env ~arith_env t = eval_node ~bool_env ~arith_env t.output

let to_dot ?(bool_name = fun v -> Printf.sprintf "b%d" v)
    ?(arith_name = fun v -> Printf.sprintf "x%d" v) t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph circuit {\n  rankdir=LR;\n";
  let edge src dst =
    Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" src dst)
  in
  Array.iter
    (fun n ->
      let label, shape =
        match n.gate with
        | G_input v -> (bool_name v, "circle")
        | G_const b -> ((if b then "tt" else "ff"), "plaintext")
        | G_not _ -> ("NOT", "invtriangle")
        | G_and _ -> ("AND", "trapezium")
        | G_or _ -> ("OR", "house")
        | G_cmp (e, op) ->
          ( Format.asprintf "%s %a 0" (Expr.to_string ~name:arith_name e)
              Linexpr.pp_op op,
            "box" )
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\", shape=%s];\n" n.id
           (String.concat "\\\"" (String.split_on_char '"' label))
           shape);
      match n.gate with
      | G_input _ | G_const _ | G_cmp _ -> ()
      | G_not m -> edge m.id n.id
      | G_and ms | G_or ms -> List.iter (fun m -> edge m.id n.id) ms)
    t.all;
  Buffer.add_string buf
    (Printf.sprintf "  out [label=\"output\", shape=doublecircle];\n  n%d -> out;\n"
       t.output.id);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
