(** The paper's 3-valued semantics 𝔹 ∪ {?} (Sec. 2): the output pin of the
    circuit carries [tt], [ff], or [?] while subproblems are undecided. *)

type t = True | False | Unknown

val of_bool : bool -> t
val to_bool_opt : t -> bool option
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val and_list : t list -> t
val or_list : t list -> t
val xor : t -> t -> t
val iff : t -> t -> t
val implies : t -> t -> t
val equal : t -> t -> bool
val is_known : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
