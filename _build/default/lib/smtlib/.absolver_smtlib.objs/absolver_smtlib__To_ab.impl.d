lib/smtlib/to_ab.ml: Absolver_core Absolver_lp Absolver_nlp Absolver_numeric Absolver_sat Ast Format Fun Hashtbl List Printf
