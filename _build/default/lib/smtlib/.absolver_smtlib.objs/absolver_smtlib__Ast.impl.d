lib/smtlib/ast.ml: Absolver_numeric Buffer Format List
