lib/smtlib/fischer.mli: Absolver_core Absolver_numeric Ast
