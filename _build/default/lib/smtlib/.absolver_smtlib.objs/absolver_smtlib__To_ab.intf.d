lib/smtlib/to_ab.mli: Absolver_core Ast
