lib/smtlib/fischer.ml: Absolver_numeric Ast List Parser Printf To_ab
