lib/smtlib/parser.ml: Absolver_numeric Ast List Printf String
