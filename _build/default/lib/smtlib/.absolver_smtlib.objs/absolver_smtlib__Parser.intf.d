lib/smtlib/parser.mli: Ast
