lib/smtlib/ast.mli: Absolver_numeric Format
