(** Generator for the FISCHER mutual-exclusion benchmarks of the paper's
    Table 2.

    The original [FISCHERn-1-fair.smt] files come from the SMT-LIB 1.2
    distribution (MathSAT suite) and are not redistributable from a sealed
    environment, so we regenerate the family: a bounded-model-checking
    unrolling of Fischer's timed mutual-exclusion protocol for [n]
    processes — real-valued clocks, a shared lock variable, alternating
    delay/discrete steps — in SMT-LIB 1.2 concrete syntax, which then runs
    through {!Parser} and {!To_ab} exactly like the originals did.

    Protocol constants: a process must write the lock within [a = 1] time
    unit of requesting, and waits [b = 2 > a] before entering its critical
    section; [a < b] makes the protocol safe.

    Properties:
    - [Mutex_violation]: two processes simultaneously critical somewhere
      in the unrolling (UNSAT for [a < b] — the verification reading);
    - [Cs_within d]: process 1 reaches its critical section with total
      elapsed time at most [d] (SAT iff [d] is at least the minimal
      traversal time [b]). *)

module Q = Absolver_numeric.Rational

type property = Mutex_violation | Cs_within of Q.t

val benchmark : ?rounds:int -> ?property:property -> n:int -> unit -> Ast.benchmark
(** [rounds] is the number of delay+discrete step pairs unrolled
    (default 4). The benchmark name follows the paper:
    ["FISCHER<n>-1-fair"]. *)

val problem :
  ?rounds:int -> ?property:property -> n:int -> unit ->
  (Absolver_core.Ab_problem.t, string) result
(** Convenience: generate, print, re-parse and convert — the full Table 2
    pipeline. *)
