module Q = Absolver_numeric.Rational

type sort = S_real | S_int | S_bool

type term =
  | T_var of string
  | T_const of Q.t
  | T_add of term list
  | T_sub of term * term
  | T_neg of term
  | T_mul of term * term
  | T_div of term * term

type formula =
  | F_true
  | F_false
  | F_pred of string
  | F_cmp of cmp * term * term
  | F_not of formula
  | F_and of formula list
  | F_or of formula list
  | F_implies of formula * formula
  | F_iff of formula * formula
  | F_xor of formula * formula

and cmp = Lt | Le | Gt | Ge | Eq

type benchmark = {
  name : string;
  logic : string;
  extrafuns : (string * sort) list;
  extrapreds : string list;
  status : [ `Sat | `Unsat | `Unknown ];
  assumptions : formula list;
  formula : formula;
}

let cmp_name = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "="

let rec pp_term fmt = function
  | T_var s -> Format.pp_print_string fmt s
  | T_const q ->
    if Q.sign q < 0 then Format.fprintf fmt "(~ %s)" (Q.to_string (Q.neg q))
    else Format.pp_print_string fmt (Q.to_string q)
  | T_add ts ->
    Format.fprintf fmt "(+";
    List.iter (fun t -> Format.fprintf fmt " %a" pp_term t) ts;
    Format.fprintf fmt ")"
  | T_sub (a, b) -> Format.fprintf fmt "(- %a %a)" pp_term a pp_term b
  | T_neg a -> Format.fprintf fmt "(~ %a)" pp_term a
  | T_mul (a, b) -> Format.fprintf fmt "(* %a %a)" pp_term a pp_term b
  | T_div (a, b) -> Format.fprintf fmt "(/ %a %a)" pp_term a pp_term b

let rec pp_formula fmt = function
  | F_true -> Format.pp_print_string fmt "true"
  | F_false -> Format.pp_print_string fmt "false"
  | F_pred s -> Format.pp_print_string fmt s
  | F_cmp (c, a, b) ->
    Format.fprintf fmt "(%s %a %a)" (cmp_name c) pp_term a pp_term b
  | F_not f -> Format.fprintf fmt "(not %a)" pp_formula f
  | F_and fs -> pp_nary fmt "and" fs
  | F_or fs -> pp_nary fmt "or" fs
  | F_implies (a, b) -> Format.fprintf fmt "(implies %a %a)" pp_formula a pp_formula b
  | F_iff (a, b) -> Format.fprintf fmt "(iff %a %a)" pp_formula a pp_formula b
  | F_xor (a, b) -> Format.fprintf fmt "(xor %a %a)" pp_formula a pp_formula b

and pp_nary fmt op fs =
  Format.fprintf fmt "(%s" op;
  List.iter (fun f -> Format.fprintf fmt " %a" pp_formula f) fs;
  Format.fprintf fmt ")"

let to_string b =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_set_margin fmt 100;
  Format.fprintf fmt "(benchmark %s@." b.name;
  Format.fprintf fmt "  :logic %s@." b.logic;
  Format.fprintf fmt "  :status %s@."
    (match b.status with `Sat -> "sat" | `Unsat -> "unsat" | `Unknown -> "unknown");
  if b.extrafuns <> [] then begin
    Format.fprintf fmt "  :extrafuns (";
    List.iter
      (fun (n, s) ->
        Format.fprintf fmt "(%s %s) " n
          (match s with S_real -> "Real" | S_int -> "Int" | S_bool -> "Bool"))
      b.extrafuns;
    Format.fprintf fmt ")@."
  end;
  if b.extrapreds <> [] then begin
    Format.fprintf fmt "  :extrapreds (";
    List.iter (fun n -> Format.fprintf fmt "(%s) " n) b.extrapreds;
    Format.fprintf fmt ")@."
  end;
  List.iter
    (fun a -> Format.fprintf fmt "  :assumption %a@." pp_formula a)
    b.assumptions;
  Format.fprintf fmt "  :formula %a@.)@." pp_formula b.formula;
  Format.pp_print_flush fmt ();
  Buffer.contents buf
