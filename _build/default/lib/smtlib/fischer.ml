module Q = Absolver_numeric.Rational

type property = Mutex_violation | Cs_within of Q.t

(* Locations of a process. *)
let locations = [ "idle"; "req"; "wait"; "cs" ]

let delay_a = Ast.T_const Q.one
let delay_b = Ast.T_const (Q.of_int 2)

let benchmark ?(rounds = 4) ?(property = Cs_within (Q.of_int 4)) ~n () =
  let steps = 2 * rounds in
  (* Predicate and variable names. *)
  let at loc i t = Printf.sprintf "at_%s_p%d_s%d" loc i t in
  let lock i t = Printf.sprintf "lock%d_s%d" i t (* 0 = free *) in
  let clock i t = Printf.sprintf "x_p%d_s%d" i t in
  let delay t = Printf.sprintf "d_s%d" t in
  let preds = ref [] and funs = ref [] in
  for t = 0 to steps do
    for i = 1 to n do
      List.iter (fun l -> preds := at l i t :: !preds) locations;
      funs := (clock i t, Ast.S_real) :: !funs
    done;
    for i = 0 to n do
      preds := lock i t :: !preds
    done
  done;
  for t = 0 to steps - 1 do
    funs := (delay t, Ast.S_real) :: !funs
  done;
  let pvar s = Ast.F_pred s in
  let tvar s = Ast.T_var s in
  let eq a b = Ast.F_cmp (Ast.Eq, a, b) in
  let ge a b = Ast.F_cmp (Ast.Ge, a, b) in
  let le a b = Ast.F_cmp (Ast.Le, a, b) in
  let gt a b = Ast.F_cmp (Ast.Gt, a, b) in
  let zero = Ast.T_const Q.zero in
  let exactly_one ps =
    Ast.F_and
      (Ast.F_or ps
      :: List.concat_map
           (fun (a, b) -> [ Ast.F_not (Ast.F_and [ a; b ]) ])
           (let rec pairs = function
              | [] -> []
              | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
            in
            pairs ps))
  in
  (* Structural invariants (assumptions): one location per process, one
     lock owner, nonnegative clocks and delays. *)
  let invariants =
    List.concat
      (List.init (steps + 1) (fun t ->
           List.init n (fun i ->
               exactly_one (List.map (fun l -> pvar (at l (i + 1) t)) locations))
           @ [ exactly_one (List.init (n + 1) (fun i -> pvar (lock i t))) ]
           @ List.init n (fun i -> ge (tvar (clock (i + 1) t)) zero)))
    @ List.init steps (fun t -> ge (tvar (delay t)) zero)
  in
  (* Initial state. *)
  let init =
    Ast.F_and
      (pvar (lock 0 0)
      :: List.concat
           (List.init n (fun i ->
                [ pvar (at "idle" (i + 1) 0); eq (tvar (clock (i + 1) 0)) zero ])))
  in
  (* Frame conditions. *)
  let same_loc i t = Ast.F_and (List.map (fun l -> Ast.F_iff (pvar (at l i t), pvar (at l i (t + 1)))) locations) in
  let same_lock t = Ast.F_and (List.init (n + 1) (fun i -> Ast.F_iff (pvar (lock i t), pvar (lock i (t + 1))))) in
  let same_clock i t = eq (tvar (clock i (t + 1))) (tvar (clock i t)) in
  let reset_clock i t = eq (tvar (clock i (t + 1))) zero in
  (* One discrete move of process i at step t. *)
  let move i t =
    let others_framed =
      Ast.F_and
        (List.concat
           (List.init n (fun j ->
                let j = j + 1 in
                if j = i then [] else [ same_loc j t; same_clock j t ])))
    in
    let transitions =
      [
        (* idle -> req when lock free; reset clock *)
        Ast.F_and
          [
            pvar (at "idle" i t);
            pvar (lock 0 t);
            pvar (at "req" i (t + 1));
            reset_clock i t;
            same_lock t;
          ];
        (* req -> wait within a; grab lock; reset clock *)
        Ast.F_and
          [
            pvar (at "req" i t);
            le (tvar (clock i t)) delay_a;
            pvar (at "wait" i (t + 1));
            reset_clock i t;
            pvar (lock i (t + 1));
          ];
        (* wait -> cs after b if lock still ours *)
        Ast.F_and
          [
            pvar (at "wait" i t);
            gt (tvar (clock i t)) delay_b;
            pvar (lock i t);
            pvar (at "cs" i (t + 1));
            same_clock i t;
            same_lock t;
          ];
        (* wait -> idle when the lock was stolen *)
        Ast.F_and
          [
            pvar (at "wait" i t);
            Ast.F_not (pvar (lock i t));
            pvar (at "idle" i (t + 1));
            same_clock i t;
            same_lock t;
          ];
        (* cs -> idle, release *)
        Ast.F_and
          [
            pvar (at "cs" i t);
            pvar (at "idle" i (t + 1));
            same_clock i t;
            pvar (lock 0 (t + 1));
          ];
      ]
    in
    (* Exactly one location holds at t+1 by the invariants, so asserting
       the target location suffices.  Each transition mentions the moving
       process's next location; the lock of non-mentioned indices is
       pinned by same_lock or the asserted owner plus exactly-one. *)
    Ast.F_and [ Ast.F_or transitions; others_framed ]
  in
  (* Alternating steps: even = delay, odd = some process moves. *)
  let step t =
    if t mod 2 = 0 then
      Ast.F_and
        (same_lock t
        :: List.concat
             (List.init n (fun i ->
                  let i = i + 1 in
                  [
                    same_loc i t;
                    eq
                      (tvar (clock i (t + 1)))
                      (Ast.T_add [ tvar (clock i t); tvar (delay t) ]);
                  ])))
    else
      Ast.F_and
        [ eq (tvar (delay t)) zero; Ast.F_or (List.init n (fun i -> move (i + 1) t)) ]
  in
  let steps_f = List.init steps step in
  let property_f =
    match property with
    | Mutex_violation ->
      let pairs = ref [] in
      for t = 0 to steps do
        for i = 1 to n do
          for j = i + 1 to n do
            pairs := Ast.F_and [ pvar (at "cs" i t); pvar (at "cs" j t) ] :: !pairs
          done
        done
      done;
      Ast.F_or !pairs
    | Cs_within d ->
      Ast.F_and
        [
          Ast.F_or (List.init (steps + 1) (fun t -> pvar (at "cs" 1 t)));
          le (Ast.T_add (List.init steps (fun t -> tvar (delay t)))) (Ast.T_const d);
        ]
  in
  let status =
    match property with
    | Mutex_violation -> `Unsat
    | Cs_within d -> if Q.gt d (Q.of_int 2) then `Sat else `Unsat
  in
  {
    Ast.name = Printf.sprintf "FISCHER%d-1-fair" n;
    logic = "QF_LRA";
    extrafuns = List.rev !funs;
    extrapreds = List.rev !preds;
    status;
    assumptions = invariants @ [ init ] @ steps_f;
    formula = property_f;
  }

let problem ?rounds ?property ~n () =
  let b = benchmark ?rounds ?property ~n () in
  let text = Ast.to_string b in
  match Parser.parse_benchmark text with
  | Error e -> Error ("re-parse failed: " ^ e)
  | Ok b' -> To_ab.convert b'
