(** Abstract syntax for the SMT-LIB 1.2 subset used by the paper's
    Table 2 benchmarks (QF_LRA-style: Boolean structure over linear
    real/integer arithmetic atoms). *)

module Q = Absolver_numeric.Rational

type sort = S_real | S_int | S_bool

type term =
  | T_var of string
  | T_const of Q.t
  | T_add of term list
  | T_sub of term * term
  | T_neg of term
  | T_mul of term * term
  | T_div of term * term

type formula =
  | F_true
  | F_false
  | F_pred of string (** propositional variable (extrapred) *)
  | F_cmp of cmp * term * term
  | F_not of formula
  | F_and of formula list
  | F_or of formula list
  | F_implies of formula * formula
  | F_iff of formula * formula
  | F_xor of formula * formula

and cmp = Lt | Le | Gt | Ge | Eq

type benchmark = {
  name : string;
  logic : string;
  extrafuns : (string * sort) list;
  extrapreds : string list;
  status : [ `Sat | `Unsat | `Unknown ];
  assumptions : formula list;
  formula : formula;
}

val pp_term : Format.formatter -> term -> unit
val pp_formula : Format.formatter -> formula -> unit
val to_string : benchmark -> string
(** SMT-LIB 1.2 concrete syntax. *)
