(** Outward-rounded interval arithmetic.

    Every operation returns an interval guaranteed to contain the exact
    real result for any choice of reals in the argument intervals
    (containment is the only property the branch-and-prune solver needs;
    tightness is best-effort). Transcendental functions are widened by a
    few ulps beyond the libm result to absorb its rounding error. *)

type t = private { lo : float; hi : float }
(** Invariant: [lo <= hi] (with possibly infinite endpoints), or the
    canonical {!empty} value. Endpoints are never nan. *)

val make : float -> float -> t
(** @raise Invalid_argument if [lo > hi] or an endpoint is nan. *)

val of_float : float -> t
(** Degenerate point interval. @raise Invalid_argument on nan. *)

val of_ints : int -> int -> t

val of_rational : Rational.t -> t
(** Tightest float enclosure of an exact rational, verified by exact
    comparison (sound even when [Rational.to_float] is off by several
    ulps). *)

val of_rational_bounds : Rational.t option -> Rational.t option -> t
(** [None] bounds are infinite. *)

val empty : t
val entire : t
val zero : t
val one : t

(** {1 Predicates and measures} *)

val is_empty : t -> bool
val is_entire : t -> bool
val is_point : t -> bool
val mem : float -> t -> bool
val subset : t -> t -> bool
val contains_zero : t -> bool
val strictly_positive : t -> bool
val strictly_negative : t -> bool

val width : t -> float
(** [infinity] for unbounded intervals; [0.] for points and {!empty}. *)

val mid : t -> float
(** A finite point inside the interval (clamped for unbounded intervals).
    @raise Invalid_argument on {!empty}. *)

val mag : t -> float
(** Maximum absolute value over the interval. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Set operations} *)

val inter : t -> t -> t
val hull : t -> t -> t

val split : t -> t * t
(** Bisect at {!mid}. @raise Invalid_argument on {!empty} or points that
    cannot be split. *)

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Returns the interval hull when the divisor straddles zero; {!empty}
    when the divisor is the point zero. *)

val inv : t -> t
val sqr : t -> t
val pow_int : t -> int -> t
val sqrt : t -> t
val exp : t -> t
val log : t -> t
val sin : t -> t
val cos : t -> t

val min_i : t -> t -> t
val max_i : t -> t -> t
