(** Directed rounding helpers for the interval arithmetic layer.

    OCaml exposes no way to change the FPU rounding mode, so outward
    rounding is emulated by stepping results to the adjacent representable
    float. This is coarser than true directed rounding (one extra ulp of
    width per operation) but preserves the containment guarantee the
    branch-and-prune solver relies on. *)

val next_up : float -> float
(** Smallest representable float strictly greater than the argument.
    [next_up infinity = infinity]; [next_up nan] is nan. *)

val next_down : float -> float
(** Largest representable float strictly less than the argument. *)

val add_down : float -> float -> float
val add_up : float -> float -> float
val sub_down : float -> float -> float
val sub_up : float -> float -> float
val mul_down : float -> float -> float
val mul_up : float -> float -> float
val div_down : float -> float -> float
val div_up : float -> float -> float

val widen_down : float -> float
(** Step down unless the value is exact by construction (infinite). *)

val widen_up : float -> float
