lib/numeric/interval.mli: Format Rational
