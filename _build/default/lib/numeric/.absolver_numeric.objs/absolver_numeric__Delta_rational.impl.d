lib/numeric/delta_rational.ml: Format List Rational
