lib/numeric/interval.ml: Float Float_ops Format Rational
