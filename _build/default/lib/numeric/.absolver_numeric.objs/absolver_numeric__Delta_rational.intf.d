lib/numeric/delta_rational.mli: Format Rational
