lib/numeric/float_ops.mli:
