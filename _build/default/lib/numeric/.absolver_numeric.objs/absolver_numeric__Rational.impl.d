lib/numeric/rational.ml: Bigint Float Format Int64 String
