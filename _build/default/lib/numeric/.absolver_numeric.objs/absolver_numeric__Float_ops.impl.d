lib/numeric/float_ops.ml: Float Int64
