module Q = Rational

type t = { r : Q.t; k : Q.t }

let make r k = { r; k }
let of_rational r = { r; k = Q.zero }
let of_int n = of_rational (Q.of_int n)
let zero = of_int 0
let delta = { r = Q.zero; k = Q.one }
let r t = t.r
let k t = t.k
let add a b = { r = Q.add a.r b.r; k = Q.add a.k b.k }
let sub a b = { r = Q.sub a.r b.r; k = Q.sub a.k b.k }
let neg a = { r = Q.neg a.r; k = Q.neg a.k }
let scale c a = { r = Q.mul c a.r; k = Q.mul c a.k }

let compare a b =
  let c = Q.compare a.r b.r in
  if c <> 0 then c else Q.compare a.k b.k

let equal a b = compare a b = 0
let lt a b = compare a b < 0
let leq a b = compare a b <= 0
let min a b = if leq a b then a else b
let max a b = if leq a b then b else a
let is_rational t = Q.is_zero t.k

let pp fmt t =
  if Q.is_zero t.k then Q.pp fmt t.r
  else Format.fprintf fmt "%a + %a*delta" Q.pp t.r Q.pp t.k

(* For each symbolic ordering r1 + k1*d <= r2 + k2*d with k1 > k2 the
   concrete delta must satisfy d <= (r2 - r1) / (k1 - k2); take the minimum
   over all such constraints, capped at 1. *)
let concretize_delta pairs =
  let bound =
    List.fold_left
      (fun acc (lhs, rhs) ->
        if Q.gt lhs.k rhs.k then
          let limit = Q.div (Q.sub rhs.r lhs.r) (Q.sub lhs.k rhs.k) in
          Q.min acc limit
        else acc)
      Q.one pairs
  in
  if Q.sign bound > 0 then Q.div bound (Q.of_int 2) else Q.of_ints 1 2

let substitute d t = Q.add t.r (Q.mul d t.k)
