module F = Float_ops

type t = { lo : float; hi : float }

(* Canonical empty interval: lo > hi so every membership test fails. *)
let empty = { lo = Float.infinity; hi = Float.neg_infinity }
let entire = { lo = Float.neg_infinity; hi = Float.infinity }
let is_empty i = i.lo > i.hi

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then
    invalid_arg "Interval.make: nan endpoint"
  else if lo > hi then invalid_arg "Interval.make: lo > hi"
  else { lo; hi }

let of_float x =
  if Float.is_nan x then invalid_arg "Interval.of_float: nan" else { lo = x; hi = x }

let of_ints a b = make (float_of_int a) (float_of_int b)
let zero = of_float 0.0
let one = of_float 1.0
let is_entire i = i.lo = Float.neg_infinity && i.hi = Float.infinity
let is_point i = i.lo = i.hi
let mem x i = i.lo <= x && x <= i.hi
let subset a b = is_empty a || (b.lo <= a.lo && a.hi <= b.hi)
let contains_zero i = mem 0.0 i
let strictly_positive i = (not (is_empty i)) && i.lo > 0.0
let strictly_negative i = (not (is_empty i)) && i.hi < 0.0
let width i = if is_empty i then 0.0 else i.hi -. i.lo
let equal a b = (is_empty a && is_empty b) || (a.lo = b.lo && a.hi = b.hi)

let mid i =
  if is_empty i then invalid_arg "Interval.mid: empty interval"
  else if is_entire i then 0.0
  else if i.lo = Float.neg_infinity then Float.min (-1.0) (i.hi *. 2.0 -. 1.0)
  else if i.hi = Float.infinity then Float.max 1.0 (i.lo *. 2.0 +. 1.0)
  else
    let m = 0.5 *. (i.lo +. i.hi) in
    if Float.is_finite m && m >= i.lo && m <= i.hi then m
    else (0.5 *. i.lo) +. (0.5 *. i.hi)

let mag i = if is_empty i then 0.0 else Float.max (Float.abs i.lo) (Float.abs i.hi)

let pp fmt i =
  if is_empty i then Format.pp_print_string fmt "[empty]"
  else Format.fprintf fmt "[%.17g, %.17g]" i.lo i.hi

let inter a b =
  if is_empty a || is_empty b then empty
  else
    let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
    if lo > hi then empty else { lo; hi }

let hull a b =
  if is_empty a then b
  else if is_empty b then a
  else { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let split i =
  if is_empty i then invalid_arg "Interval.split: empty interval"
  else
    let m = mid i in
    if m <= i.lo || m >= i.hi then invalid_arg "Interval.split: point interval"
    else ({ lo = i.lo; hi = m }, { lo = m; hi = i.hi })

let neg i = if is_empty i then empty else { lo = -.i.hi; hi = -.i.lo }

let abs i =
  if is_empty i then empty
  else if i.lo >= 0.0 then i
  else if i.hi <= 0.0 then neg i
  else { lo = 0.0; hi = Float.max (-.i.lo) i.hi }

let add a b =
  if is_empty a || is_empty b then empty
  else { lo = F.add_down a.lo b.lo; hi = F.add_up a.hi b.hi }

let sub a b =
  if is_empty a || is_empty b then empty
  else { lo = F.sub_down a.lo b.hi; hi = F.sub_up a.hi b.lo }

(* 0 * inf must contribute 0, not nan: any real in a degenerate-zero factor
   annihilates the product regardless of the other factor's bounds. *)
let mul_endpoint_down x y = if x = 0.0 || y = 0.0 then 0.0 else F.mul_down x y
let mul_endpoint_up x y = if x = 0.0 || y = 0.0 then 0.0 else F.mul_up x y

let mul a b =
  if is_empty a || is_empty b then empty
  else
    let cand_lo =
      Float.min
        (Float.min (mul_endpoint_down a.lo b.lo) (mul_endpoint_down a.lo b.hi))
        (Float.min (mul_endpoint_down a.hi b.lo) (mul_endpoint_down a.hi b.hi))
    and cand_hi =
      Float.max
        (Float.max (mul_endpoint_up a.lo b.lo) (mul_endpoint_up a.lo b.hi))
        (Float.max (mul_endpoint_up a.hi b.lo) (mul_endpoint_up a.hi b.hi))
    in
    { lo = cand_lo; hi = cand_hi }

let div_endpoint_down x y = if x = 0.0 then 0.0 else F.div_down x y
let div_endpoint_up x y = if x = 0.0 then 0.0 else F.div_up x y

let div a b =
  if is_empty a || is_empty b then empty
  else if b.lo = 0.0 && b.hi = 0.0 then empty
  else if contains_zero b then
    (* The exact result is a union of two rays; return its hull unless one
       side of the divisor is the point zero. *)
    if b.lo = 0.0 then
      (* divisor is [0, hi] with hi > 0 *)
      if a.lo >= 0.0 then { lo = div_endpoint_down a.lo b.hi; hi = Float.infinity }
      else if a.hi <= 0.0 then
        { lo = Float.neg_infinity; hi = div_endpoint_up a.hi b.hi }
      else entire
    else if b.hi = 0.0 then
      if a.lo >= 0.0 then { lo = Float.neg_infinity; hi = div_endpoint_up a.lo b.lo }
      else if a.hi <= 0.0 then { lo = div_endpoint_down a.hi b.lo; hi = Float.infinity }
      else entire
    else entire
  else
    let cand_lo =
      Float.min
        (Float.min (div_endpoint_down a.lo b.lo) (div_endpoint_down a.lo b.hi))
        (Float.min (div_endpoint_down a.hi b.lo) (div_endpoint_down a.hi b.hi))
    and cand_hi =
      Float.max
        (Float.max (div_endpoint_up a.lo b.lo) (div_endpoint_up a.lo b.hi))
        (Float.max (div_endpoint_up a.hi b.lo) (div_endpoint_up a.hi b.hi))
    in
    { lo = cand_lo; hi = cand_hi }

let inv i = div one i

let sqr i =
  if is_empty i then empty
  else
    let a = abs i in
    { lo = mul_endpoint_down a.lo a.lo; hi = mul_endpoint_up a.hi a.hi }

let rec pow_int i n =
  if is_empty i then empty
  else if n < 0 then inv (pow_int i (-n))
  else if n = 0 then one
  else if n = 1 then i
  else if n mod 2 = 0 then
    let a = abs i in
    { lo = pow_down a.lo n; hi = pow_up a.hi n }
  else { lo = pow_down i.lo n; hi = pow_up i.hi n }

(* x^n with widening; exact for 0 and infinities. *)
and pow_down x n =
  if x = 0.0 then 0.0
  else if x = Float.infinity then Float.infinity
  else if x = Float.neg_infinity then
    if n mod 2 = 0 then Float.infinity else Float.neg_infinity
  else F.widen_down (F.widen_down (x ** float_of_int n))

and pow_up x n =
  if x = 0.0 then 0.0
  else if x = Float.infinity then Float.infinity
  else if x = Float.neg_infinity then
    if n mod 2 = 0 then Float.infinity else Float.neg_infinity
  else F.widen_up (F.widen_up (x ** float_of_int n))

(* libm's transcendental functions are faithful to within an ulp or two but
   not provably correctly rounded; step two ulps outward. *)
let libm_down f x =
  let y = f x in
  if Float.is_nan y then Float.neg_infinity else F.widen_down (F.widen_down y)

let libm_up f x =
  let y = f x in
  if Float.is_nan y then Float.infinity else F.widen_up (F.widen_up y)

let sqrt i =
  if is_empty i then empty
  else if i.hi < 0.0 then empty
  else
    let lo = Float.max 0.0 i.lo in
    { lo = Float.max 0.0 (libm_down Float.sqrt lo); hi = libm_up Float.sqrt i.hi }

let exp i =
  if is_empty i then empty
  else
    { lo = Float.max 0.0 (libm_down Float.exp i.lo); hi = libm_up Float.exp i.hi }

let log i =
  if is_empty i then empty
  else if i.hi <= 0.0 then empty
  else
    let lo = if i.lo <= 0.0 then Float.neg_infinity else libm_down Float.log i.lo in
    { lo; hi = libm_up Float.log i.hi }

let two_pi = 6.283185307179586
let pi = 3.141592653589793

(* Trigonometric enclosures.  The safe fallback [-1,1] is used whenever the
   interval is wide enough (or close enough to wrapping) that locating the
   extrema of cos/sin inside it cannot be done reliably in floats. *)
let cos i =
  if is_empty i then empty
  else if not (Float.is_finite i.lo && Float.is_finite i.hi) then make (-1.0) 1.0
  else if width i >= two_pi -. 0.01 then make (-1.0) 1.0
  else begin
    let clo = libm_down Float.cos i.lo
    and chi = libm_up Float.cos i.hi
    and clo' = libm_up Float.cos i.lo
    and chi' = libm_down Float.cos i.hi in
    let lo = ref (Float.min clo chi') and hi = ref (Float.max clo' chi) in
    (* cos attains 1 at 2k*pi and -1 at (2k+1)*pi.  Test whether a multiple
       lies in the (slightly inflated, for soundness) interval. *)
    let has_multiple offset =
      let a = (i.lo -. offset) /. two_pi -. 1e-9
      and b = (i.hi -. offset) /. two_pi +. 1e-9 in
      Float.of_int (int_of_float (Float.ceil a)) <= b
    in
    if has_multiple 0.0 then hi := 1.0;
    if has_multiple pi then lo := -1.0;
    make (Float.max (-1.0) (Float.min !lo !hi)) (Float.min 1.0 (Float.max !lo !hi))
  end

let sin i =
  if is_empty i then empty
  else cos (sub (of_float (pi /. 2.0)) (add i (make (-1e-16) 1e-16)))

let min_i a b =
  if is_empty a || is_empty b then empty
  else { lo = Float.min a.lo b.lo; hi = Float.min a.hi b.hi }

let max_i a b =
  if is_empty a || is_empty b then empty
  else { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi }

(* Tightest float enclosure of a rational, corrected by exact comparison:
   Rational.to_float may be off by several ulps for big numerators. *)
let of_rational q =
  let module Q = Rational in
  let approx = Q.to_float q in
  if Float.is_nan approx then entire
  else begin
    let rec fix_down x =
      if x = Float.neg_infinity then x
      else if Q.leq (Q.of_float x) q then x
      else fix_down (F.next_down x)
    in
    let rec fix_up x =
      if x = Float.infinity then x
      else if Q.geq (Q.of_float x) q then x
      else fix_up (F.next_up x)
    in
    let seed_lo = if Float.is_finite approx then approx else Float.max_float in
    let seed_hi = if Float.is_finite approx then approx else -.Float.max_float in
    let lo = fix_down (F.next_down (F.next_down seed_lo)) in
    let hi = fix_up (F.next_up (F.next_up seed_hi)) in
    { lo; hi }
  end

let of_rational_bounds lo hi =
  let l = match lo with None -> Float.neg_infinity | Some q -> (of_rational q).lo in
  let h = match hi with None -> Float.infinity | Some q -> (of_rational q).hi in
  if l > h then empty else { lo = l; hi = h }
