(* Stepping to the adjacent float through the IEEE-754 bit pattern: for
   positive floats incrementing the bit pattern yields the next float up,
   for negative floats it yields the next float down. *)

let next_up x =
  if Float.is_nan x then x
  else if x = Float.infinity then x
  else if x = 0.0 then Float.ldexp 1.0 (-1074)
  else
    let bits = Int64.bits_of_float x in
    if x > 0.0 then Int64.float_of_bits (Int64.succ bits)
    else Int64.float_of_bits (Int64.pred bits)

let next_down x =
  if Float.is_nan x then x
  else if x = Float.neg_infinity then x
  else if x = 0.0 then -.Float.ldexp 1.0 (-1074)
  else
    let bits = Int64.bits_of_float x in
    if x > 0.0 then Int64.float_of_bits (Int64.pred bits)
    else Int64.float_of_bits (Int64.succ bits)

(* Round-to-nearest may overflow a finite true result to an infinity, so an
   infinite result on the inward side must fall back to +-max_float to stay
   a valid bound. *)
let widen_down x =
  if x = Float.infinity then Float.max_float
  else if x = Float.neg_infinity then x
  else next_down x

let widen_up x =
  if x = Float.neg_infinity then -.Float.max_float
  else if x = Float.infinity then x
  else next_up x
let add_down a b = widen_down (a +. b)
let add_up a b = widen_up (a +. b)
let sub_down a b = widen_down (a -. b)
let sub_up a b = widen_up (a -. b)
let mul_down a b = widen_down (a *. b)
let mul_up a b = widen_up (a *. b)
let div_down a b = widen_down (a /. b)
let div_up a b = widen_up (a /. b)
