(** Arbitrary-precision signed integers.

    The sealed build environment provides no [zarith], yet the exact simplex
    solver in {!module:Absolver_lp} needs unbounded integers: pivoting on
    machine-word rationals overflows after a handful of eliminations. This
    module provides a compact sign-magnitude implementation (little-endian
    limbs in base [2^30]) with the operations the rest of the code base
    needs. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t
val ten : t

(** {1 Conversions} *)

val of_int : int -> t

val to_int : t -> int
(** @raise Failure if the value does not fit in a native [int]. *)

val to_int_opt : t -> int option
val to_float : t -> float

val of_string : string -> t
(** Accepts an optional leading ['-' | '+'] followed by decimal digits.
    Underscores are allowed as digit separators.
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Predicates and comparison} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t

val divmod : t -> t -> t * t
(** Truncated division (quotient rounded toward zero, as in OCaml's [/]);
    the remainder has the sign of the dividend.
    @raise Division_by_zero if the divisor is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative. [gcd zero zero = zero]. *)

val pow : t -> int -> t
(** [pow b e] for [e >= 0]. @raise Invalid_argument on negative exponent. *)

val shift_left : t -> int -> t
(** Multiplication by [2^n], [n >= 0]. *)

val succ : t -> t
val pred : t -> t

val num_bits : t -> int
(** Number of bits of the magnitude; [num_bits zero = 0]. *)

val is_even : t -> bool
