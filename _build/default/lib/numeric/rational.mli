(** Exact rational arithmetic over {!Bigint}.

    Values are kept normalized: the denominator is strictly positive and
    numerator/denominator are coprime. Used throughout the exact simplex
    solver and for representing constants of AB-problems without rounding
    (e.g. the [3.5] and [7.1] of the paper's Fig. 2). *)

type t

val zero : t
val one : t
val minus_one : t

(** {1 Construction} *)

val make : Bigint.t -> Bigint.t -> t
(** [make num den]. @raise Division_by_zero if [den] is zero. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t
val of_ints : int -> int -> t

val of_float : float -> t
(** Exact conversion of a finite float (every finite float is a dyadic
    rational). @raise Invalid_argument on nan or infinities. *)

val of_decimal_string : string -> t
(** Parses decimal literals as they appear in the extended-DIMACS input
    language: ["3"], ["3.5"], ["-0.25"], [".5"], ["2e3"], ["1.5e-2"], and
    exact fractions ["7/2"].
    @raise Invalid_argument on malformed input. *)

(** {1 Observation} *)

val num : t -> Bigint.t
val den : t -> Bigint.t
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool
val to_float : t -> float
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Comparison} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t
val lt : t -> t -> bool
val leq : t -> t -> bool
val gt : t -> t -> bool
val geq : t -> t -> bool

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val mul_int : t -> int -> t

val floor : t -> Bigint.t
(** Greatest integer [<=] the value. *)

val ceil : t -> Bigint.t
(** Least integer [>=] the value. *)

val pow : t -> int -> t
(** Integer exponent; negative exponents invert.
    @raise Division_by_zero when raising zero to a negative power. *)
