(** The Sudoku instance bank for Table 3.

    The paper's puzzles came from the daily column of http://sudoku.zeit.de
    (issues 2006-05-23 .. 2006-05-30) and are not redistributable from a
    sealed environment; this bank regenerates a matching set — the same
    names, the same hard/easy split — by deterministic construction: a
    canonical valid grid is shuffled with validity-preserving symmetries
    (digit relabelling, line swaps within bands, band swaps, transposition)
    seeded from the instance name, then clues are removed ("hard" keeps 26
    clues, "easy" keeps 46). Every instance is solvable by construction;
    uniqueness of the solution is not required by the benchmark. *)

val all : (string * Sudoku.puzzle) list
(** The ten Table 3 instances, in the paper's row order. *)

val find : string -> Sudoku.puzzle option

val generate : name:string -> clues:int -> Sudoku.puzzle
(** Deterministic generation for additional instances. *)

val solved_grid_of : name:string -> Sudoku.puzzle
(** The underlying complete grid (useful in tests). *)
