(* Deterministic pseudo-random stream (xorshift64-star), seeded from a name. *)
type rng = { mutable state : int64 }

let rng_of_name name =
  let h = Hashtbl.hash name in
  { state = Int64.of_int ((h * 2654435761) lor 1) }

let next rng =
  let open Int64 in
  let x = rng.state in
  let x = logxor x (shift_left x 13) in
  let x = logxor x (shift_right_logical x 7) in
  let x = logxor x (shift_left x 17) in
  rng.state <- x;
  to_int (logand x 0x3FFFFFFFFFFFFFFFL)

let rand_int rng n = next rng mod n

(* Canonical complete grid: row r, col c -> ((r*3 + r/3 + c) mod 9) + 1. *)
let base_grid () =
  Array.init 9 (fun r -> Array.init 9 (fun c -> ((((r * 3) + (r / 3) + c) mod 9) + 1)))

(* Validity-preserving transformations. *)
let permute_digits rng g =
  let perm = Array.init 10 Fun.id in
  for i = 9 downto 2 do
    let j = 1 + rand_int rng i in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  Array.map (Array.map (fun d -> perm.(d))) g

let swap_rows g r1 r2 =
  let t = g.(r1) in
  g.(r1) <- g.(r2);
  g.(r2) <- t

let transpose g = Array.init 9 (fun r -> Array.init 9 (fun c -> g.(c).(r)))

let shuffle rng g =
  let g = ref (permute_digits rng g) in
  (* Swap rows within bands, then bands themselves; transpose to mix
     columns the same way on the next iteration. *)
  for _ = 1 to 4 do
    for band = 0 to 2 do
      let r1 = (3 * band) + rand_int rng 3 and r2 = (3 * band) + rand_int rng 3 in
      swap_rows !g r1 r2
    done;
    let b1 = rand_int rng 3 and b2 = rand_int rng 3 in
    for i = 0 to 2 do
      swap_rows !g ((3 * b1) + i) ((3 * b2) + i)
    done;
    g := transpose !g
  done;
  !g

let solved_grid_of ~name = shuffle (rng_of_name name) (base_grid ())

let generate ~name ~clues =
  let grid = solved_grid_of ~name in
  let rng = rng_of_name (name ^ "/mask") in
  let order = Array.init 81 Fun.id in
  for i = 80 downto 1 do
    let j = rand_int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  let puzzle = Array.map Array.copy grid in
  let removed = ref 0 in
  Array.iter
    (fun cell ->
      if !removed < 81 - clues then begin
        puzzle.(cell / 9).(cell mod 9) <- 0;
        incr removed
      end)
    order;
  puzzle

let hard name = (name, generate ~name ~clues:26)
let easy name = (name, generate ~name ~clues:46)

let all =
  [
    hard "2006_05_23_hard";
    hard "2006_05_24_hard";
    hard "2006_05_25_hard";
    hard "2006_05_26_hard";
    hard "2006_05_27_hard";
    hard "2006_05_28_hard";
    easy "2006_05_29_easy";
    hard "2006_05_29_hard";
    easy "2006_05_30_easy";
    hard "2006_05_30_hard";
  ]

let find name = List.assoc_opt name all
