module Q = Absolver_numeric.Rational
module Expr = Absolver_nlp.Expr
module Linexpr = Absolver_lp.Linexpr
module Types = Absolver_sat.Types
module Ab_problem = Absolver_core.Ab_problem
module Solution = Absolver_core.Solution

type puzzle = int array array

let parse text =
  let digits =
    String.to_seq text
    |> Seq.filter_map (fun c ->
         if c >= '0' && c <= '9' then Some (Char.code c - Char.code '0')
         else if c = '.' then Some 0
         else if c = ' ' || c = '\n' || c = '\t' || c = '\r' || c = '|' || c = '-'
         then None
         else Some (-1))
    |> List.of_seq
  in
  if List.mem (-1) digits then Error "invalid character in puzzle"
  else if List.length digits <> 81 then
    Error (Printf.sprintf "expected 81 cells, got %d" (List.length digits))
  else begin
    let a = Array.make_matrix 9 9 0 in
    List.iteri (fun i d -> a.(i / 9).(i mod 9) <- d) digits;
    Ok a
  end

let to_string p =
  String.concat "\n"
    (List.init 9 (fun r ->
         String.concat ""
           (List.init 9 (fun c ->
                if p.(r).(c) = 0 then "." else string_of_int p.(r).(c)))))

let pp fmt p = Format.pp_print_string fmt (to_string p)

let groups =
  (* rows, columns, 3x3 boxes: lists of 9 cell coordinates *)
  List.init 9 (fun r -> List.init 9 (fun c -> (r, c)))
  @ List.init 9 (fun c -> List.init 9 (fun r -> (r, c)))
  @ List.concat
      (List.init 3 (fun br ->
           List.init 3 (fun bc ->
               List.concat
                 (List.init 3 (fun i ->
                      List.init 3 (fun j -> ((3 * br) + i, (3 * bc) + j)))))))

let is_complete_and_valid p =
  Array.for_all (fun row -> Array.for_all (fun d -> d >= 1 && d <= 9) row) p
  && List.for_all
       (fun cells ->
         let seen = Array.make 10 false in
         List.for_all
           (fun (r, c) ->
             let d = p.(r).(c) in
             if seen.(d) then false
             else begin
               seen.(d) <- true;
               true
             end)
           cells)
       groups

let respects_clues ~clues p =
  let ok = ref true in
  Array.iteri
    (fun r row ->
      Array.iteri (fun c d -> if d <> 0 && p.(r).(c) <> d then ok := false) row)
    clues;
  !ok

let cell_var problem r c = Ab_problem.intern_arith_var problem (Printf.sprintf "x_%d_%d" r c)

(* ------------------------------------------------------------------ *)
(* Mixed encoding for ABSOLVER.                                        *)

let absolver_problem puzzle =
  let problem = Ab_problem.create () in
  (* Order-encoding atoms: ge.(r).(c).(d) is the Boolean variable defined
     as x_rc >= d, for d = 2..9 (>= 1 holds by the bounds). *)
  let next = ref 0 in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let ge = Array.init 9 (fun _ -> Array.init 9 (fun _ -> Array.make 10 (-1))) in
  for r = 0 to 8 do
    for c = 0 to 8 do
      let x = cell_var problem r c in
      Ab_problem.set_bounds problem x ~lower:Q.one ~upper:(Q.of_int 9) ();
      for d = 2 to 9 do
        let v = fresh () in
        ge.(r).(c).(d) <- v;
        Ab_problem.define problem ~bool_var:v ~domain:Ab_problem.Dint
          {
            Expr.expr = Expr.sub (Expr.var x) (Expr.of_int d);
            op = Linexpr.Ge;
            tag = v;
          }
      done
    done
  done;
  (* Redundant linear structure: every row, column and box sums to 45
     (one definitional variable per group, asserted true). *)
  List.iter
    (fun cells ->
      let sum = Expr.sum (List.map (fun (r, c) -> Expr.var (cell_var problem r c)) cells) in
      let v_le = fresh () and v_ge = fresh () in
      Ab_problem.define problem ~bool_var:v_le ~domain:Ab_problem.Dint
        { Expr.expr = Expr.sub sum (Expr.of_int 45); op = Linexpr.Le; tag = v_le };
      Ab_problem.define problem ~bool_var:v_ge ~domain:Ab_problem.Dint
        { Expr.expr = Expr.sub sum (Expr.of_int 45); op = Linexpr.Ge; tag = v_ge };
      Ab_problem.add_clause problem [ Types.pos v_le ];
      Ab_problem.add_clause problem [ Types.pos v_ge ])
    groups;
  (* Plain Boolean "cell = d" variables tied to the order atoms:
       eq_d <-> (x >= d) and not (x >= d+1). *)
  let eqv = Array.init 9 (fun _ -> Array.init 9 (fun _ -> Array.make 10 (-1))) in
  for r = 0 to 8 do
    for c = 0 to 8 do
      (* Chain clauses: (x >= d+1) -> (x >= d). *)
      for d = 2 to 8 do
        Ab_problem.add_clause problem
          [ Types.neg_of_var ge.(r).(c).(d + 1); Types.pos ge.(r).(c).(d) ]
      done;
      for d = 1 to 9 do
        let e = fresh () in
        eqv.(r).(c).(d) <- e;
        let lower = if d = 1 then None else Some ge.(r).(c).(d) in
        let upper = if d = 9 then None else Some ge.(r).(c).(d + 1) in
        (* e <-> lower /\ ~upper  (missing conjuncts are constants). *)
        (match lower with
        | Some l ->
          Ab_problem.add_clause problem [ Types.neg_of_var e; Types.pos l ]
        | None -> ());
        (match upper with
        | Some u ->
          Ab_problem.add_clause problem [ Types.neg_of_var e; Types.neg_of_var u ]
        | None -> ());
        let back =
          Types.pos e
          :: (match lower with Some l -> [ Types.neg_of_var l ] | None -> [])
          @ (match upper with Some u -> [ Types.pos u ] | None -> [])
        in
        Ab_problem.add_clause problem back
      done
    done
  done;
  (* Each digit appears exactly once in each group. *)
  List.iter
    (fun cells ->
      for d = 1 to 9 do
        Ab_problem.add_clause problem
          (List.map (fun (r, c) -> Types.pos eqv.(r).(c).(d)) cells);
        let rec pairwise = function
          | [] -> ()
          | (r1, c1) :: rest ->
            List.iter
              (fun (r2, c2) ->
                Ab_problem.add_clause problem
                  [ Types.neg_of_var eqv.(r1).(c1).(d); Types.neg_of_var eqv.(r2).(c2).(d) ])
              rest;
            pairwise rest
        in
        pairwise cells
      done)
    groups;
  (* Clues. *)
  Array.iteri
    (fun r row ->
      Array.iteri
        (fun c d -> if d <> 0 then Ab_problem.add_clause problem [ Types.pos eqv.(r).(c).(d) ])
        row)
    puzzle;
  Ab_problem.set_projection problem
    (List.concat_map
       (fun (r, c) -> List.filter_map (fun d ->
            let v = eqv.(r).(c).(d) in
            if v >= 0 then Some v else None)
          (List.init 9 (fun d -> d + 1)))
       (List.init 81 (fun i -> (i / 9, i mod 9))));
  problem

(* ------------------------------------------------------------------ *)
(* Integer-heavy encoding for the baselines.                           *)

let baseline_problem puzzle =
  let problem = Ab_problem.create () in
  let next = ref 0 in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  for r = 0 to 8 do
    for c = 0 to 8 do
      let x = cell_var problem r c in
      Ab_problem.set_bounds problem x ~lower:Q.one ~upper:(Q.of_int 9) ()
    done
  done;
  (* Pairwise disequality within each group: (xi - xj >= 1) or
     (xj - xi >= 1); both sides are definitional atoms. *)
  let diff_atom a b =
    let v = fresh () in
    Ab_problem.define problem ~bool_var:v ~domain:Ab_problem.Dint
      {
        Expr.expr = Expr.sub (Expr.sub (Expr.var a) (Expr.var b)) (Expr.of_int 1);
        op = Linexpr.Ge;
        tag = v;
      };
    v
  in
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun cells ->
      let rec pairwise = function
        | [] -> ()
        | (r1, c1) :: rest ->
          List.iter
            (fun (r2, c2) ->
              let key = (r1, c1, r2, c2) in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                let a = cell_var problem r1 c1 and b = cell_var problem r2 c2 in
                let v1 = diff_atom a b and v2 = diff_atom b a in
                Ab_problem.add_clause problem [ Types.pos v1; Types.pos v2 ]
              end)
            rest;
          pairwise rest
      in
      pairwise cells)
    groups;
  (* Clues as equalities (split to keep solvers' negation simple). *)
  Array.iteri
    (fun r row ->
      Array.iteri
        (fun c d ->
          if d <> 0 then begin
            let x = cell_var problem r c in
            let v_le = fresh () and v_ge = fresh () in
            Ab_problem.define problem ~bool_var:v_le ~domain:Ab_problem.Dint
              { Expr.expr = Expr.sub (Expr.var x) (Expr.of_int d); op = Linexpr.Le; tag = v_le };
            Ab_problem.define problem ~bool_var:v_ge ~domain:Ab_problem.Dint
              { Expr.expr = Expr.sub (Expr.var x) (Expr.of_int d); op = Linexpr.Ge; tag = v_ge };
            Ab_problem.add_clause problem [ Types.pos v_le ];
            Ab_problem.add_clause problem [ Types.pos v_ge ]
          end)
        row)
    puzzle;
  problem

(* Pure-SAT encoding: e_{r,c,d} Booleans only. *)
let sat_problem puzzle =
  let problem = Ab_problem.create () in
  let e r c d = (((r * 9) + c) * 9) + (d - 1) in
  Ab_problem.ensure_bool_vars problem 729;
  (* Each cell holds at least one and at most one digit. *)
  for r = 0 to 8 do
    for c = 0 to 8 do
      Ab_problem.add_clause problem (List.init 9 (fun d -> Types.pos (e r c (d + 1))));
      for d1 = 1 to 9 do
        for d2 = d1 + 1 to 9 do
          Ab_problem.add_clause problem
            [ Types.neg_of_var (e r c d1); Types.neg_of_var (e r c d2) ]
        done
      done
    done
  done;
  (* Each digit appears exactly once per group. *)
  List.iter
    (fun cells ->
      for d = 1 to 9 do
        Ab_problem.add_clause problem
          (List.map (fun (r, c) -> Types.pos (e r c d)) cells);
        let rec pairwise = function
          | [] -> ()
          | (r1, c1) :: rest ->
            List.iter
              (fun (r2, c2) ->
                Ab_problem.add_clause problem
                  [ Types.neg_of_var (e r1 c1 d); Types.neg_of_var (e r2 c2 d) ])
              rest;
            pairwise rest
        in
        pairwise cells
      done)
    groups;
  Array.iteri
    (fun r row ->
      Array.iteri
        (fun c d -> if d <> 0 then Ab_problem.add_clause problem [ Types.pos (e r c d) ])
        row)
    puzzle;
  problem

let decode_sat (solution : Solution.t) =
  let e r c d = (((r * 9) + c) * 9) + (d - 1) in
  let p = Array.make_matrix 9 9 0 in
  for r = 0 to 8 do
    for c = 0 to 8 do
      for d = 1 to 9 do
        if solution.Solution.bools.(e r c d) then p.(r).(c) <- d
      done
    done
  done;
  p

let decode problem solution =
  let p = Array.make_matrix 9 9 0 in
  for r = 0 to 8 do
    for c = 0 to 8 do
      match Ab_problem.arith_var_index problem (Printf.sprintf "x_%d_%d" r c) with
      | None -> ()
      | Some v ->
        let x = Solution.float_env solution ~default:0.0 v in
        p.(r).(c) <- int_of_float (Float.round x)
    done
  done;
  p
