lib/encodings/puzzles.ml: Array Fun Hashtbl Int64 List
