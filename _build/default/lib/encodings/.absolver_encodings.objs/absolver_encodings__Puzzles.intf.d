lib/encodings/puzzles.mli: Sudoku
