lib/encodings/sudoku.ml: Absolver_core Absolver_lp Absolver_nlp Absolver_numeric Absolver_sat Array Char Float Format Hashtbl List Printf Seq String
