lib/encodings/sudoku.mli: Absolver_core Format
