(** Sudoku as a mixed Boolean/integer-linear AB-problem (paper Sec. 5.3).

    Two encodings are provided, mirroring the paper's situation where each
    solver received the problem in the form its input language accepts:

    - {!absolver_problem}: the "natural" mixed encoding the paper credits
      for ABSOLVER's speed. Cells are integer variables [x_rc in [1,9]];
      order-encoding atoms [x_rc >= d] are definitional Boolean variables
      (their negation is a single inequality, so the control loop never
      branches); derived cell=digit Booleans carry the classic
      exactly-one/all-different CNF, so LSAT's Boolean search does the
      combinatorics and the linear solver reconstructs the integer values
      (plus redundant row/column/box sum-45 constraints that exercise it);

    - {!baseline_problem}: the integer-arithmetic-heavy form (pairwise
      disequalities over the integer cells, clues as equalities) that
      Boolean+linear solvers of the era accepted — and crawled on, since
      all the work lands on integer feasibility (Table 3's 75-137 minute
      MathSAT times and CVC Lite's out-of-memory aborts). *)

type puzzle = int array array
(** 9x9; entries 0 (blank) or 1..9. *)

val parse : string -> (puzzle, string) result
(** 81 digit characters (0 or '.' for blanks), whitespace ignored. *)

val to_string : puzzle -> string
val pp : Format.formatter -> puzzle -> unit

val is_complete_and_valid : puzzle -> bool
val respects_clues : clues:puzzle -> puzzle -> bool

val absolver_problem : puzzle -> Absolver_core.Ab_problem.t
val baseline_problem : puzzle -> Absolver_core.Ab_problem.t

val sat_problem : puzzle -> Absolver_core.Ab_problem.t
(** The classic pure-SAT encoding (the paper's [6,12]): 729 cell=digit
    Booleans, exactly-one and all-different clauses, no arithmetic at
    all. Used by the encoding-comparison ablation that tests the paper's
    claim that the mixed encoding "can be tackled more efficiently". *)

val decode :
  Absolver_core.Ab_problem.t -> Absolver_core.Solution.t -> puzzle
(** Read the cell values out of a solution of the mixed or baseline
    encoding (via the arithmetic cell variables). *)

val decode_sat : Absolver_core.Solution.t -> puzzle
(** Read the cell values out of a solution of {!sat_problem} (via the
    cell=digit Booleans). *)
