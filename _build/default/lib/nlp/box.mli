(** Variable boxes: one interval per variable. *)

module I = Absolver_numeric.Interval

type t = I.t array

val create : int -> t
(** All variables unbounded. *)

val of_bounds : (int * I.t) list -> int -> t
val copy : t -> t
val get : t -> int -> I.t
val set : t -> int -> I.t -> unit
val is_empty : t -> bool
(** Some variable has an empty interval. *)

val max_width : t -> float
val widest_var : t -> int
(** Index of the variable with the widest interval (preferring finite but
    wide over infinite, which are split around zero by the solver).
    @raise Invalid_argument on zero-dimensional boxes. *)

val midpoint : t -> float array
val env : t -> int -> I.t
val point_env : float array -> int -> I.t
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val volume_reduced : from:t -> to_:t -> bool
(** True when [to_] is meaningfully smaller than [from] (used as the HC4
    fixpoint test). *)
