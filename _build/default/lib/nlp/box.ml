module I = Absolver_numeric.Interval

type t = I.t array

let create n = Array.make n I.entire

let of_bounds bounds n =
  let b = create n in
  List.iter (fun (v, i) -> b.(v) <- i) bounds;
  b

let copy = Array.copy
let get b v = b.(v)
let set b v i = b.(v) <- i
let is_empty b = Array.exists I.is_empty b
let max_width b = Array.fold_left (fun acc i -> Float.max acc (I.width i)) 0.0 b

let widest_var b =
  if Array.length b = 0 then invalid_arg "Box.widest_var: empty box";
  let best = ref 0 and best_w = ref (-1.0) in
  Array.iteri
    (fun v i ->
      let w = I.width i in
      (* Prefer finite-width candidates; infinite intervals still win over
         point intervals so the solver can split them around zero. *)
      let score = if Float.is_finite w then w else Float.max_float in
      if score > !best_w && w > 0.0 then begin
        best := v;
        best_w := score
      end)
    b;
  !best

let midpoint b = Array.map I.mid b
let env b v = b.(v)
let point_env p v = I.of_float p.(v)

let pp fmt b =
  Format.fprintf fmt "{";
  Array.iteri (fun v i -> Format.fprintf fmt " x%d:%a" v I.pp i) b;
  Format.fprintf fmt " }"

let equal a b = Array.length a = Array.length b && Array.for_all2 I.equal a b

let volume_reduced ~from ~to_ =
  let improved = ref false in
  Array.iteri
    (fun v old ->
      let nw = I.width to_.(v) and ow = I.width old in
      if nw < 0.9 *. ow || (I.is_empty to_.(v) && not (I.is_empty old)) then
        improved := true)
    from;
  !improved
