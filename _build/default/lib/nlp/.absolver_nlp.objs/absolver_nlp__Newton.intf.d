lib/nlp/newton.mli: Absolver_numeric Expr
