lib/nlp/newton.ml: Absolver_numeric Expr Float
