lib/nlp/hc4.ml: Absolver_lp Absolver_numeric Array Box Expr Float List
