lib/nlp/box.mli: Absolver_numeric Format
