lib/nlp/box.ml: Absolver_numeric Array Float Format List
