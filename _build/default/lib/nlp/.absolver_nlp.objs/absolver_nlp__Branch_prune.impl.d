lib/nlp/branch_prune.ml: Absolver_lp Absolver_numeric Array Box Expr Float Format Hc4 List Newton Random
