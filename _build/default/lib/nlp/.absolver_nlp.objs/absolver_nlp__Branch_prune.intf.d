lib/nlp/branch_prune.mli: Box Expr Format
