lib/nlp/expr.mli: Absolver_lp Absolver_numeric Format
