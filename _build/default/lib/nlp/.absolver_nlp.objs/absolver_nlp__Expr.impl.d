lib/nlp/expr.ml: Absolver_lp Absolver_numeric Float Format List Option Printf Stdlib
