lib/nlp/hc4.mli: Absolver_numeric Box Expr
