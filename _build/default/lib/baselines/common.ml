module Expr = Absolver_nlp.Expr

type result =
  | B_sat of Absolver_core.Solution.t
  | B_unsat
  | B_rejected of string
  | B_out_of_memory
  | B_unknown of string

let result_name = function
  | B_sat _ -> "sat"
  | B_unsat -> "unsat"
  | B_rejected _ -> "rejected"
  | B_out_of_memory -> "out-of-memory"
  | B_unknown _ -> "unknown"

let pp_result fmt r =
  match r with
  | B_rejected why -> Format.fprintf fmt "rejected (%s)" why
  | B_unknown why -> Format.fprintf fmt "unknown (%s)" why
  | B_sat _ | B_unsat | B_out_of_memory ->
    Format.pp_print_string fmt (result_name r)

let nonlinear_defs problem =
  List.length
    (List.filter
       (fun (d : Absolver_core.Ab_problem.def) ->
         not (Expr.is_linear d.rel.Expr.expr))
       (Absolver_core.Ab_problem.defs problem))
