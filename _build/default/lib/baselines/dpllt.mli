(** Shared DPLL(T) core of the two comparison baselines: CDCL with an
    incremental exact simplex attached through the theory-callback
    interface, consistency checked at every propagation fixpoint, theory
    conflicts learnt as clauses.

    The optional [meter] charges a never-freed term database for every
    case split, asserted constraint and integer expansion — the
    CVC-Lite-like memory behaviour; without it the core is the
    MathSAT-like configuration. *)

val solve :
  ?meter:Budget.t ->
  ?max_conflicts:int ->
  ?deadline_seconds:float ->
  Absolver_core.Ab_problem.t ->
  Common.result
