let name = "MathSAT-like (tight DPLL(T))"

let solve ?max_conflicts ?deadline_seconds problem =
  Dpllt.solve ?max_conflicts ?deadline_seconds problem
