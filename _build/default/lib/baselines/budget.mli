(** Word-budget memory accounting for the CVC-Lite-like baseline.

    The paper's Table 3 reports CVC Lite aborting out-of-memory on every
    Sudoku instance. Exhausting a real machine to reproduce a 2004
    allocator's behaviour would be antisocial; instead the baseline meters
    the cells its never-freed term database would allocate and raises
    {!Simulated_out_of_memory} when a budget is exceeded (see DESIGN.md
    §3, substitution 5). *)

exception Simulated_out_of_memory

type t

val create : limit:int -> t
val alloc : t -> int -> unit
(** @raise Simulated_out_of_memory when cumulative allocation passes the
    limit. *)

val allocated : t -> int
val limit : t -> int
