exception Simulated_out_of_memory

type t = { limit : int; mutable used : int }

let create ~limit = { limit; used = 0 }

let alloc t n =
  t.used <- t.used + n;
  if t.used > t.limit then raise Simulated_out_of_memory

let allocated t = t.used
let limit t = t.limit
