(** Shared result vocabulary of the comparison baselines. *)

type result =
  | B_sat of Absolver_core.Solution.t
  | B_unsat
  | B_rejected of string
      (** The solver does not accept the input — e.g. nonlinear arithmetic
          (paper Sec. 5.1: "both CVC Lite and MathSAT rejected the
          problems due to the nonlinear arithmetic inequalities"). *)
  | B_out_of_memory
  | B_unknown of string

val pp_result : Format.formatter -> result -> unit
val result_name : result -> string

val nonlinear_defs : Absolver_core.Ab_problem.t -> int
(** Number of definitions outside linear arithmetic. *)
