lib/baselines/budget.mli:
