lib/baselines/dpllt.mli: Absolver_core Budget Common
