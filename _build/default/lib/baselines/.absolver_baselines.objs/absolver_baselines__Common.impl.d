lib/baselines/common.ml: Absolver_core Absolver_nlp Format List
