lib/baselines/budget.ml:
