lib/baselines/dpllt.ml: Absolver_core Absolver_lp Absolver_nlp Absolver_numeric Absolver_sat Array Budget Common Fun List Option Printf Unix
