lib/baselines/common.mli: Absolver_core Format
