lib/baselines/mathsat_like.ml: Dpllt
