lib/baselines/cvclite_like.ml: Budget Dpllt
