lib/baselines/mathsat_like.mli: Absolver_core Common
