lib/baselines/cvclite_like.mli: Absolver_core Common
