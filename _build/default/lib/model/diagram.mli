(** Block diagrams: blocks wired output-to-input, as in a (combinational)
    MATLAB/Simulink model. *)

type block_id = int

type t

val create : unit -> t

val add_block : t -> Block.t -> block_id

val connect : t -> src:block_id -> dst:block_id -> port:int -> unit
(** Wire the (single) output of [src] to input [port] of [dst] (0-based).
    @raise Invalid_argument on unknown ids or port out of range. *)

val block : t -> block_id -> Block.t
val blocks : t -> (block_id * Block.t) list
val input_of : t -> block_id -> int -> block_id option
val num_blocks : t -> int

val validate : t -> (unit, string) result
(** Checks: every input port driven exactly once, no cycles, type
    consistency (Boolean vs numeric signals), at least one outport. *)

val outports : t -> (block_id * string) list

val topological_order : t -> (block_id list, string) result
(** Blocks in dependency order; [Error] on a combinational cycle. *)
