(** Block vocabulary of the MATLAB/Simulink-like front end.

    The subset implemented here covers the combinational blocks that the
    paper's conversion chain handles (Fig. 1's sources, arithmetic,
    comparison and logic blocks) plus the math functions of our operator
    extension. Signals are real-, integer- or Boolean-valued. *)

module Q = Absolver_numeric.Rational

type comparison = C_lt | C_le | C_gt | C_ge | C_eq

val pp_comparison : Format.formatter -> comparison -> unit
val comparison_of_string : string -> comparison option
val comparison_to_string : comparison -> string

type math_fn = M_sqrt | M_exp | M_log | M_sin | M_cos

val math_fn_to_string : math_fn -> string
val math_fn_of_string : string -> math_fn option

type t =
  | B_inport of { name : string; lo : Q.t option; hi : Q.t option; integer : bool }
      (** External input with optional signal range (sensor range). *)
  | B_const of Q.t
  | B_add (** two inputs *)
  | B_sub
  | B_mul
  | B_div
  | B_gain of Q.t (** one input, scaled *)
  | B_sum of int (** n-ary addition *)
  | B_math of math_fn
  | B_pow of int
  | B_compare of comparison * Q.t (** input ? constant; Boolean output *)
  | B_relop of comparison (** two inputs; Boolean output *)
  | B_and of int
  | B_or of int
  | B_not
  | B_outport of string (** Boolean observation point *)
  | B_delay of Q.t
      (** Unit delay (Simulink's 1/z): outputs its initial value at step 0
          and its input's previous value afterwards. Only meaningful under
          the BMC conversion ({!Convert.node_to_ab_bmc}); the
          combinational conversion rejects it. *)

val arity : t -> int
(** Number of input ports. *)

val is_boolean_output : t -> bool
val name : t -> string
(** Short block-kind name (for printing and the textual format). *)

val pp : Format.formatter -> t -> unit
