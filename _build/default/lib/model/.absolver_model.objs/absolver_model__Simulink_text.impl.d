lib/model/simulink_text.ml: Absolver_numeric Block Buffer Diagram List Printf String
