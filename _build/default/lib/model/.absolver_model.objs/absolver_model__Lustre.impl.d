lib/model/lustre.ml: Absolver_numeric Block Buffer Diagram Format List Printf String
