lib/model/simulink_text.mli: Diagram
