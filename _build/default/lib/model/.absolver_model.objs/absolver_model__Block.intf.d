lib/model/block.mli: Absolver_numeric Format
