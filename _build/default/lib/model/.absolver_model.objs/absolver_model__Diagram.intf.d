lib/model/diagram.mli: Block
