lib/model/steering.ml: Absolver_core Absolver_numeric Block Convert Diagram List Lustre
