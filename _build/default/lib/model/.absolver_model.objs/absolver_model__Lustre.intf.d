lib/model/lustre.mli: Absolver_numeric Block Diagram Stdlib
