lib/model/testgen.ml: Absolver_core Array Block Buffer Convert Diagram List Printf
