lib/model/testgen.mli: Absolver_core Diagram
