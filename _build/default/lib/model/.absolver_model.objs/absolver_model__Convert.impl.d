lib/model/convert.ml: Absolver_core Absolver_lp Absolver_nlp Absolver_numeric Absolver_sat Block Format Fun Hashtbl List Lustre Printf
