lib/model/block.ml: Absolver_numeric Format
