lib/model/diagram.ml: Array Block List Printf String
