lib/model/steering.mli: Absolver_core Diagram Lustre
