lib/model/convert.mli: Absolver_core Diagram Lustre Stdlib
