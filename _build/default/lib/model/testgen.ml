module A = Absolver_core

type test_case = {
  inputs : (string * float) list;
  output_value : bool;
  pattern : (int * bool) list;
}

type coverage = {
  cases : test_case list;
  patterns_total : int;
  patterns_true : int;
}

let cases_for ~limit ~registry ~goal ~output d =
  match Convert.diagram_to_ab ~goal ~output d with
  | Error e -> Error e
  | Ok problem -> (
    match A.Engine.all_models ?registry ~limit problem with
    | Error e -> Error e
    | Ok (solutions, _) ->
      let inport_names =
        List.filter_map
          (fun (_, b) ->
            match b with
            | Block.B_inport { name; _ } -> Some name
            | Block.B_const _ | Block.B_add | Block.B_sub | Block.B_mul
            | Block.B_div | Block.B_gain _ | Block.B_sum _ | Block.B_math _
            | Block.B_pow _ | Block.B_compare _ | Block.B_relop _
            | Block.B_and _ | Block.B_or _ | Block.B_not | Block.B_outport _
            | Block.B_delay _ ->
              None)
          (Diagram.blocks d)
      in
      let case_of (sol : A.Solution.t) =
        let inputs =
          List.map
            (fun name ->
              match A.Ab_problem.arith_var_index problem name with
              | Some v -> (name, A.Solution.float_env sol ~default:0.0 v)
              | None -> (name, 0.0))
            inport_names
        in
        let pattern =
          List.map
            (fun v -> (v, sol.A.Solution.bools.(v)))
            (A.Ab_problem.defined_vars problem)
        in
        { inputs; output_value = goal = `Find_witness; pattern }
      in
      Ok (List.map case_of solutions))

let generate ?(limit = 256) ?registry ~output d =
  (* Cover both output polarities: patterns where the property holds and
     patterns where it is violated. *)
  match cases_for ~limit ~registry ~goal:`Find_witness ~output d with
  | Error e -> Error e
  | Ok pos -> (
    let remaining = max 0 (limit - List.length pos) in
    match
      if remaining = 0 then Ok []
      else cases_for ~limit:remaining ~registry ~goal:`Find_violation ~output d
    with
    | Error e -> Error e
    | Ok neg ->
      let cases = pos @ neg in
      Ok
        {
          cases;
          patterns_total = List.length cases;
          patterns_true = List.length pos;
        })

let to_csv coverage =
  match coverage.cases with
  | [] -> "\n"
  | first :: _ ->
    let buf = Buffer.create 256 in
    List.iter (fun (name, _) -> Buffer.add_string buf (name ^ ",")) first.inputs;
    Buffer.add_string buf "expected_output\n";
    List.iter
      (fun case ->
        List.iter
          (fun (_, v) -> Buffer.add_string buf (Printf.sprintf "%.9g," v))
          case.inputs;
        Buffer.add_string buf (string_of_bool case.output_value);
        Buffer.add_char buf '\n')
      coverage.cases;
    Buffer.contents buf
