module Q = Absolver_numeric.Rational

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

exception Bad of string

let failf fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let parse_q line_no s =
  match Q.of_decimal_string s with
  | q -> q
  | exception Invalid_argument _ -> failf "line %d: bad number %S" line_no s

let parse_q_opt line_no s = if s = "_" then None else Some (parse_q line_no s)

let parse_int line_no s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> failf "line %d: bad integer %S" line_no s

let parse_block line_no tokens =
  match tokens with
  | [ "Inport"; name; lo; hi ] ->
    Block.B_inport
      { name; lo = parse_q_opt line_no lo; hi = parse_q_opt line_no hi; integer = false }
  | [ "Inport"; name; lo; hi; "int" ] ->
    Block.B_inport
      { name; lo = parse_q_opt line_no lo; hi = parse_q_opt line_no hi; integer = true }
  | [ "Const"; q ] -> Block.B_const (parse_q line_no q)
  | [ "Add" ] -> Block.B_add
  | [ "Sub" ] -> Block.B_sub
  | [ "Mul" ] -> Block.B_mul
  | [ "Div" ] -> Block.B_div
  | [ "Not" ] -> Block.B_not
  | [ "Gain"; q ] -> Block.B_gain (parse_q line_no q)
  | [ "Sum"; n ] -> Block.B_sum (parse_int line_no n)
  | [ "And"; n ] -> Block.B_and (parse_int line_no n)
  | [ "Or"; n ] -> Block.B_or (parse_int line_no n)
  | [ "Math"; f ] -> (
    match Block.math_fn_of_string f with
    | Some f -> Block.B_math f
    | None -> failf "line %d: unknown math function %S" line_no f)
  | [ "Pow"; n ] -> Block.B_pow (parse_int line_no n)
  | [ "Compare"; op; q ] -> (
    match Block.comparison_of_string op with
    | Some c -> Block.B_compare (c, parse_q line_no q)
    | None -> failf "line %d: unknown comparison %S" line_no op)
  | [ "Relop"; op ] -> (
    match Block.comparison_of_string op with
    | Some c -> Block.B_relop c
    | None -> failf "line %d: unknown comparison %S" line_no op)
  | [ "Outport"; name ] -> Block.B_outport name
  | [ "Delay"; init ] -> Block.B_delay (parse_q line_no init)
  | kind :: _ -> failf "line %d: malformed %s block" line_no kind
  | [] -> failf "line %d: empty block" line_no

let parse_string text =
  match
    let name = ref "model" in
    let diagram = Diagram.create () in
    let wires = ref [] in
    let handle line_no line =
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      match split_ws line with
      | [] -> ()
      | [ "model"; n ] -> name := n
      | "block" :: id :: rest ->
        let id = parse_int line_no id in
        if id <> Diagram.num_blocks diagram then
          failf "line %d: block ids must be dense (expected %d, got %d)" line_no
            (Diagram.num_blocks diagram) id;
        ignore (Diagram.add_block diagram (parse_block line_no rest))
      | [ "wire"; src; dst; port ] ->
        wires :=
          (parse_int line_no src, parse_int line_no dst, parse_int line_no port)
          :: !wires
      | tok :: _ -> failf "line %d: unknown directive %S" line_no tok
    in
    List.iteri (fun i l -> handle (i + 1) l) (String.split_on_char '\n' text);
    List.iter
      (fun (src, dst, port) ->
        match Diagram.connect diagram ~src ~dst ~port with
        | () -> ()
        | exception Invalid_argument m -> raise (Bad m))
      (List.rev !wires);
    (!name, diagram)
  with
  | result -> Ok result
  | exception Bad msg -> Error msg

let parse_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    parse_string content

let to_string ~name d =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "model %s\n" name);
  List.iter
    (fun (id, b) ->
      let body =
        match b with
        | Block.B_inport { name; lo; hi; integer } ->
          let s = function None -> "_" | Some q -> Q.to_string q in
          Printf.sprintf "Inport %s %s %s%s" name (s lo) (s hi)
            (if integer then " int" else "")
        | Block.B_const q -> "Const " ^ Q.to_string q
        | Block.B_add -> "Add"
        | Block.B_sub -> "Sub"
        | Block.B_mul -> "Mul"
        | Block.B_div -> "Div"
        | Block.B_not -> "Not"
        | Block.B_gain q -> "Gain " ^ Q.to_string q
        | Block.B_sum n -> Printf.sprintf "Sum %d" n
        | Block.B_and n -> Printf.sprintf "And %d" n
        | Block.B_or n -> Printf.sprintf "Or %d" n
        | Block.B_math f -> "Math " ^ Block.math_fn_to_string f
        | Block.B_pow n -> Printf.sprintf "Pow %d" n
        | Block.B_compare (c, q) ->
          Printf.sprintf "Compare %s %s" (Block.comparison_to_string c) (Q.to_string q)
        | Block.B_relop c -> "Relop " ^ Block.comparison_to_string c
        | Block.B_outport n -> "Outport " ^ n
        | Block.B_delay init -> "Delay " ^ Q.to_string init
      in
      Buffer.add_string buf (Printf.sprintf "block %d %s\n" id body))
    (Diagram.blocks d);
  List.iter
    (fun (id, b) ->
      for port = 0 to Block.arity b - 1 do
        match Diagram.input_of d id port with
        | Some src -> Buffer.add_string buf (Printf.sprintf "wire %d %d %d\n" src id port)
        | None -> ()
      done)
    (Diagram.blocks d);
  Buffer.contents buf

let write_file path ~name d =
  let oc = open_out path in
  output_string oc (to_string ~name d);
  close_out oc
