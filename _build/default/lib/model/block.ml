module Q = Absolver_numeric.Rational

type comparison = C_lt | C_le | C_gt | C_ge | C_eq

let comparison_to_string = function
  | C_lt -> "<"
  | C_le -> "<="
  | C_gt -> ">"
  | C_ge -> ">="
  | C_eq -> "="

let comparison_of_string = function
  | "<" -> Some C_lt
  | "<=" -> Some C_le
  | ">" -> Some C_gt
  | ">=" -> Some C_ge
  | "=" | "==" -> Some C_eq
  | _ -> None

let pp_comparison fmt c = Format.pp_print_string fmt (comparison_to_string c)

type math_fn = M_sqrt | M_exp | M_log | M_sin | M_cos

let math_fn_to_string = function
  | M_sqrt -> "sqrt"
  | M_exp -> "exp"
  | M_log -> "log"
  | M_sin -> "sin"
  | M_cos -> "cos"

let math_fn_of_string = function
  | "sqrt" -> Some M_sqrt
  | "exp" -> Some M_exp
  | "log" -> Some M_log
  | "sin" -> Some M_sin
  | "cos" -> Some M_cos
  | _ -> None

type t =
  | B_inport of { name : string; lo : Q.t option; hi : Q.t option; integer : bool }
  | B_const of Q.t
  | B_add
  | B_sub
  | B_mul
  | B_div
  | B_gain of Q.t
  | B_sum of int
  | B_math of math_fn
  | B_pow of int
  | B_compare of comparison * Q.t
  | B_relop of comparison
  | B_and of int
  | B_or of int
  | B_not
  | B_outport of string
  | B_delay of Q.t

let arity = function
  | B_delay _ -> 1
  | B_inport _ | B_const _ -> 0
  | B_gain _ | B_math _ | B_pow _ | B_compare _ | B_not | B_outport _ -> 1
  | B_add | B_sub | B_mul | B_div | B_relop _ -> 2
  | B_sum n | B_and n | B_or n -> n

let is_boolean_output = function
  | B_compare _ | B_relop _ | B_and _ | B_or _ | B_not | B_outport _ -> true
  | B_inport _ | B_const _ | B_add | B_sub | B_mul | B_div | B_gain _ | B_sum _
  | B_math _ | B_pow _ | B_delay _ ->
    false

let name = function
  | B_inport _ -> "Inport"
  | B_const _ -> "Const"
  | B_add -> "Add"
  | B_sub -> "Sub"
  | B_mul -> "Mul"
  | B_div -> "Div"
  | B_gain _ -> "Gain"
  | B_sum _ -> "Sum"
  | B_math _ -> "Math"
  | B_pow _ -> "Pow"
  | B_compare _ -> "Compare"
  | B_relop _ -> "Relop"
  | B_and _ -> "And"
  | B_or _ -> "Or"
  | B_not -> "Not"
  | B_outport _ -> "Outport"
  | B_delay _ -> "Delay"

let pp fmt b =
  match b with
  | B_inport { name; lo; hi; integer } ->
    let s = function None -> "_" | Some q -> Q.to_string q in
    Format.fprintf fmt "Inport %s [%s, %s]%s" name (s lo) (s hi)
      (if integer then " int" else "")
  | B_const q -> Format.fprintf fmt "Const %a" Q.pp q
  | B_gain q -> Format.fprintf fmt "Gain %a" Q.pp q
  | B_sum n -> Format.fprintf fmt "Sum %d" n
  | B_math f -> Format.fprintf fmt "Math %s" (math_fn_to_string f)
  | B_pow n -> Format.fprintf fmt "Pow %d" n
  | B_compare (c, q) -> Format.fprintf fmt "Compare %s %a" (comparison_to_string c) Q.pp q
  | B_relop c -> Format.fprintf fmt "Relop %s" (comparison_to_string c)
  | B_and n -> Format.fprintf fmt "And %d" n
  | B_or n -> Format.fprintf fmt "Or %d" n
  | B_outport s -> Format.fprintf fmt "Outport %s" s
  | B_delay q -> Format.fprintf fmt "Delay %a" Q.pp q
  | B_add | B_sub | B_mul | B_div | B_not ->
    Format.pp_print_string fmt (name b)
