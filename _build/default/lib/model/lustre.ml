module Q = Absolver_numeric.Rational

type ty = T_real | T_bool

type expr =
  | E_var of string
  | E_const_q of Q.t
  | E_const_b of bool
  | E_add of expr * expr
  | E_sub of expr * expr
  | E_mul of expr * expr
  | E_div of expr * expr
  | E_pow of expr * int
  | E_math of Block.math_fn * expr
  | E_cmp of Block.comparison * expr * expr
  | E_and of expr list
  | E_or of expr list
  | E_not of expr
  | E_delay of Q.t * expr

type input = {
  in_name : string;
  in_lo : Q.t option;
  in_hi : Q.t option;
  in_integer : bool;
}

type equation = { lhs : string; ty : ty; rhs : expr }

type node = {
  node_name : string;
  inputs : input list;
  outputs : string list;
  equations : equation list;
}

let signal_name id = Printf.sprintf "sig_%d" id

let of_diagram ~name d =
  match Diagram.validate d with
  | Error e -> Error e
  | Ok () -> (
    match Diagram.topological_order d with
    | Error e -> Error e
    | Ok order ->
      let inputs = ref [] and eqs = ref [] and outs = ref [] in
      let sig_of id =
        match Diagram.block d id with
        | Block.B_inport { name; _ } -> name
        | _ -> signal_name id
      in
      let in_sig id port =
        match Diagram.input_of d id port with
        | Some src -> E_var (sig_of src)
        | None -> assert false (* validated *)
      in
      List.iter
        (fun id ->
          let b = Diagram.block d id in
          let ty = if Block.is_boolean_output b then T_bool else T_real in
          let push rhs = eqs := { lhs = sig_of id; ty; rhs } :: !eqs in
          match b with
          | Block.B_inport { name; lo; hi; integer } ->
            inputs := { in_name = name; in_lo = lo; in_hi = hi; in_integer = integer } :: !inputs
          | Block.B_const q -> push (E_const_q q)
          | Block.B_add -> push (E_add (in_sig id 0, in_sig id 1))
          | Block.B_sub -> push (E_sub (in_sig id 0, in_sig id 1))
          | Block.B_mul -> push (E_mul (in_sig id 0, in_sig id 1))
          | Block.B_div -> push (E_div (in_sig id 0, in_sig id 1))
          | Block.B_gain q -> push (E_mul (E_const_q q, in_sig id 0))
          | Block.B_sum n ->
            let rec build i acc =
              if i >= n then acc else build (i + 1) (E_add (acc, in_sig id i))
            in
            push (build 1 (in_sig id 0))
          | Block.B_math f -> push (E_math (f, in_sig id 0))
          | Block.B_pow n -> push (E_pow (in_sig id 0, n))
          | Block.B_compare (c, q) -> push (E_cmp (c, in_sig id 0, E_const_q q))
          | Block.B_relop c -> push (E_cmp (c, in_sig id 0, in_sig id 1))
          | Block.B_and n -> push (E_and (List.init n (in_sig id)))
          | Block.B_or n -> push (E_or (List.init n (in_sig id)))
          | Block.B_not -> push (E_not (in_sig id 0))
          | Block.B_delay init -> push (E_delay (init, in_sig id 0))
          | Block.B_outport out_name ->
            eqs := { lhs = out_name; ty = T_bool; rhs = in_sig id 0 } :: !eqs;
            outs := out_name :: !outs)
        order;
      Ok
        {
          node_name = name;
          inputs = List.rev !inputs;
          outputs = List.rev !outs;
          equations = List.rev !eqs;
        })

let rec pp_expr fmt = function
  | E_var s -> Format.pp_print_string fmt s
  | E_const_q q -> Q.pp fmt q
  | E_const_b b -> Format.pp_print_bool fmt b
  | E_add (a, b) -> Format.fprintf fmt "(%a + %a)" pp_expr a pp_expr b
  | E_sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp_expr a pp_expr b
  | E_mul (a, b) -> Format.fprintf fmt "(%a * %a)" pp_expr a pp_expr b
  | E_div (a, b) -> Format.fprintf fmt "(%a / %a)" pp_expr a pp_expr b
  | E_pow (a, n) -> Format.fprintf fmt "(%a ^ %d)" pp_expr a n
  | E_math (f, a) -> Format.fprintf fmt "%s(%a)" (Block.math_fn_to_string f) pp_expr a
  | E_cmp (c, a, b) ->
    Format.fprintf fmt "(%a %s %a)" pp_expr a (Block.comparison_to_string c) pp_expr b
  | E_and es -> pp_nary fmt "and" es
  | E_or es -> pp_nary fmt "or" es
  | E_not a -> Format.fprintf fmt "not (%a)" pp_expr a
  | E_delay (init, a) -> Format.fprintf fmt "(%a -> pre %a)" Q.pp init pp_expr a

and pp_nary fmt op = function
  | [] -> Format.pp_print_string fmt (if op = "and" then "true" else "false")
  | [ e ] -> pp_expr fmt e
  | e :: rest ->
    Format.fprintf fmt "(%a" pp_expr e;
    List.iter (fun e -> Format.fprintf fmt " %s %a" op pp_expr e) rest;
    Format.fprintf fmt ")"

let to_string node =
  let buf = Buffer.create 512 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "node %s (" node.node_name;
  List.iteri
    (fun i inp ->
      Format.fprintf fmt "%s%s : real" (if i > 0 then "; " else "") inp.in_name)
    node.inputs;
  Format.fprintf fmt ")@.returns (%s);@."
    (String.concat "; "
       (List.map (fun o -> o ^ " : bool") node.outputs));
  let locals =
    List.filter
      (fun eq -> not (List.mem eq.lhs node.outputs))
      node.equations
  in
  if locals <> [] then begin
    Format.fprintf fmt "var@.";
    List.iter
      (fun eq ->
        Format.fprintf fmt "  %s : %s;@." eq.lhs
          (match eq.ty with T_real -> "real" | T_bool -> "bool"))
      locals
  end;
  Format.fprintf fmt "let@.";
  List.iter
    (fun eq -> Format.fprintf fmt "  %s = %a;@." eq.lhs pp_expr eq.rhs)
    node.equations;
  Format.fprintf fmt "tel@.";
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let signal_ty node s =
  if List.exists (fun i -> i.in_name = s) node.inputs then Some T_real
  else
    List.find_map
      (fun eq -> if eq.lhs = s then Some eq.ty else None)
      node.equations
