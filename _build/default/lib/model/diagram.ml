type block_id = int

type t = {
  mutable blocks : Block.t array;
  mutable n : int;
  (* inputs.(id) = array of driving block ids, -1 if unconnected *)
  mutable inputs : int array array;
}

let create () = { blocks = Array.make 16 Block.B_add; n = 0; inputs = Array.make 16 [||] }

let add_block t b =
  if t.n = Array.length t.blocks then begin
    let nb = Array.make (2 * t.n) Block.B_add in
    Array.blit t.blocks 0 nb 0 t.n;
    t.blocks <- nb;
    let ni = Array.make (2 * t.n) [||] in
    Array.blit t.inputs 0 ni 0 t.n;
    t.inputs <- ni
  end;
  let id = t.n in
  t.blocks.(id) <- b;
  t.inputs.(id) <- Array.make (Block.arity b) (-1);
  t.n <- id + 1;
  id

let check_id t id name =
  if id < 0 || id >= t.n then invalid_arg (Printf.sprintf "Diagram.%s: unknown block %d" name id)

let connect t ~src ~dst ~port =
  check_id t src "connect";
  check_id t dst "connect";
  if port < 0 || port >= Array.length t.inputs.(dst) then
    invalid_arg (Printf.sprintf "Diagram.connect: port %d out of range for block %d" port dst);
  t.inputs.(dst).(port) <- src

let block t id =
  check_id t id "block";
  t.blocks.(id)

let blocks t = List.init t.n (fun i -> (i, t.blocks.(i)))

let input_of t id port =
  check_id t id "input_of";
  if port < 0 || port >= Array.length t.inputs.(id) then None
  else
    let s = t.inputs.(id).(port) in
    if s < 0 then None else Some s

let num_blocks t = t.n

let outports t =
  List.filter_map
    (fun (id, b) -> match b with Block.B_outport s -> Some (id, s) | _ -> None)
    (blocks t)

let topological_order t =
  (* DFS with cycle detection. *)
  let state = Array.make t.n `White in
  let order = ref [] in
  let rec visit id =
    match state.(id) with
    | `Black -> Ok ()
    | `Gray -> Error (Printf.sprintf "combinational cycle through block %d" id)
    | `White ->
      state.(id) <- `Gray;
      (* A delay's input is a state edge: it does not participate in the
         combinational dependency order. *)
      let is_delay =
        match t.blocks.(id) with
        | Block.B_delay _ -> true
        | Block.B_inport _ | Block.B_const _ | Block.B_add | Block.B_sub
        | Block.B_mul | Block.B_div | Block.B_gain _ | Block.B_sum _
        | Block.B_math _ | Block.B_pow _ | Block.B_compare _ | Block.B_relop _
        | Block.B_and _ | Block.B_or _ | Block.B_not | Block.B_outport _ ->
          false
      in
      let rec kids i =
        if is_delay || i >= Array.length t.inputs.(id) then Ok ()
        else
          let src = t.inputs.(id).(i) in
          if src < 0 then kids (i + 1)
          else match visit src with Ok () -> kids (i + 1) | Error _ as e -> e
      in
      (match kids 0 with
      | Ok () ->
        state.(id) <- `Black;
        order := id :: !order;
        Ok ()
      | Error _ as e -> e)
  in
  let rec all i =
    if i >= t.n then Ok ()
    else match visit i with Ok () -> all (i + 1) | Error _ as e -> e
  in
  match all 0 with Ok () -> Ok (List.rev !order) | Error e -> Error e

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* Connectivity. *)
  for id = 0 to t.n - 1 do
    Array.iteri
      (fun port src ->
        if src < 0 then err "block %d (%s): input %d unconnected" id (Block.name t.blocks.(id)) port)
      t.inputs.(id)
  done;
  (* Types: propagate Boolean-ness along the topological order. *)
  (match topological_order t with
  | Error e -> err "%s" e
  | Ok order ->
    let boolean = Array.make t.n false in
    List.iter
      (fun id ->
        let b = t.blocks.(id) in
        boolean.(id) <- Block.is_boolean_output b;
        let expect_bool =
          match b with
          | Block.B_and _ | Block.B_or _ | Block.B_not | Block.B_outport _ -> true
          | Block.B_inport _ | Block.B_const _ | Block.B_add | Block.B_sub
          | Block.B_mul | Block.B_div | Block.B_gain _ | Block.B_sum _
          | Block.B_math _ | Block.B_pow _ | Block.B_compare _ | Block.B_relop _
          | Block.B_delay _ ->
            false
        in
        Array.iter
          (fun src ->
            if src >= 0 && boolean.(src) <> expect_bool then
              err "block %d (%s): input type mismatch (from block %d)" id
                (Block.name b) src)
          t.inputs.(id))
      order);
  if outports t = [] then err "no outport";
  match !errors with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))
