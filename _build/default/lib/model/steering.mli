(** The car steering-control case study (paper Sec. 3), rebuilt.

    The original MATLAB/Simulink model is withheld by the paper's authors
    for IP reasons; this is a synthetic stand-in with the same published
    interface and conversion statistics:

    - sensors: yaw rate in [-7, 7], lateral acceleration in [-20, 20],
      four wheel speeds in [-400, 400], steering angle in [-1, 1];
    - a nonlinear single-track vehicle environment (speed-dependent yaw
      reference, lateral-acceleration coupling, slip and side-slip
      plausibility) — products and divisions of sensor signals, exactly
      the constraint class SCADE-era tools could not check (Sec. 3);
    - a stability controller with actuator-range and error-opposition
      requirements;
    - a self-test monitor cascade sized so the conversion yields the
      published 976 CNF clauses with 24 arithmetic constraints, 4 linear
      and 20 nonlinear.

    The safety property [ok] states: whenever the sensor set is plausible
    and the car is in a critical (over-/under-steering) situation, the
    commanded correction opposes the yaw error and stays within actuator
    authority. The AB-problem asserts [not ok], so SAT answers are
    counterexample scenarios — the validation use of the paper. *)

val diagram : unit -> Diagram.t
(** The tuned model (monitor cascade included). *)

val lustre_node : unit -> Lustre.node

val problem : unit -> Absolver_core.Ab_problem.t
(** The converted AB-problem ([`Find_violation] of output ["ok"]).
    Satisfies [stats.n_clauses = 976], [n_linear = 4], [n_nonlinear = 20]. *)

val target_clauses : int
(** 976, as published in Table 1. *)

(**/**)

val diagram_core_for_debug : unit -> Diagram.t
