module Q = Absolver_numeric.Rational

let target_clauses = 976

let q s = Q.of_decimal_string s

(* The core vehicle + controller model.  [pad] appends a tautological
   monitor cascade (self-test stages) used to reach the published problem
   size; [pad] is a list of AND-gate arities, each stage adding
   (arity + 1) Tseitin clauses. *)
let build ~pad =
  let d = Diagram.create () in
  let add = Diagram.add_block d in
  let wire src dst port = Diagram.connect d ~src ~dst ~port in
  let inport name lo hi =
    add (Block.B_inport { name; lo = Some (q lo); hi = Some (q hi); integer = false })
  in
  (* Sensors (ranges from paper Sec. 3). *)
  let yaw = inport "yaw" "-7.0" "7.0" in
  let a_lat = inport "a_lat" "-20.0" "20.0" in
  let v_fl = inport "v_fl" "-400.0" "400.0" in
  let v_fr = inport "v_fr" "-400.0" "400.0" in
  let v_rl = inport "v_rl" "-400.0" "400.0" in
  let v_rr = inport "v_rr" "-400.0" "400.0" in
  let delta = inport "delta" "-1.0" "1.0" in
  let binop b x y =
    let id = add b in
    wire x id 0;
    wire y id 1;
    id
  in
  let unop b x =
    let id = add b in
    wire x id 0;
    id
  in
  let cmp c k x = unop (Block.B_compare (c, q k)) x in
  let gain k x = unop (Block.B_gain (q k)) x in
  let const k = add (Block.B_const (q k)) in
  let nary b xs =
    let id = add b in
    List.iteri (fun i x -> wire x id i) xs;
    id
  in
  (* Vehicle speed from the rear axle: v = (v_rl + v_rr) / 2. *)
  let v = gain "0.5" (binop Block.B_add v_rl v_rr) in
  (* Single-track steady-state yaw reference:
       yaw_ref = v * delta / (L * (1 + v^2 / vch^2)),  L = 2.8, vch = 20. *)
  let v2 = unop (Block.B_pow 2) v in
  let denom =
    gain "2.8" (binop Block.B_add (const "1.0") (gain "0.0025" v2))
  in
  let yaw_ref = binop Block.B_div (binop Block.B_mul v delta) denom in
  let err = binop Block.B_sub yaw yaw_ref in
  (* Commanded correction: u = k1 * err + k2 * err * v. *)
  let u =
    binop Block.B_add (gain "0.8" err) (gain "0.05" (binop Block.B_mul err v))
  in
  (* -- Linear plausibility: wheel-speed spreads (the 4 linear constraints). *)
  let spread a b lim = cmp Block.C_le lim (binop Block.B_sub a b) in
  let plaus_wheels =
    nary (Block.B_and 4)
      [
        spread v_fl v_fr "30.0";
        spread v_fr v_fl "30.0";
        spread v_rl v_rr "30.0";
        spread v_rr v_rl "30.0";
      ]
  in
  (* -- Nonlinear constraints (20 comparisons). *)
  (* N1/N2: over- and under-steer detection. *)
  let over = cmp Block.C_ge "0.4" err in
  let under = cmp Block.C_le "-0.4" err in
  (* N3/N4: lateral-acceleration consistency |a_lat - v*yaw| <= 4. *)
  let v_yaw = binop Block.B_mul v yaw in
  let lat_err = binop Block.B_sub a_lat v_yaw in
  let stable_lat =
    binop (Block.B_and 2) (cmp Block.C_le "4.0" lat_err) (cmp Block.C_ge "-4.0" lat_err)
  in
  (* N5/N6: physical range of the coupled acceleration |v*yaw| <= 25. *)
  let plaus_alat =
    binop (Block.B_and 2) (cmp Block.C_le "25.0" v_yaw) (cmp Block.C_ge "-25.0" v_yaw)
  in
  (* N7/N8: front-axle speed vs. steering geometry. *)
  let v_front = gain "0.5" (binop Block.B_add v_fl v_fr) in
  let geo =
    binop Block.B_sub v_front
      (binop Block.B_mul v
         (binop Block.B_add (const "1.0") (gain "0.5" (unop (Block.B_pow 2) delta))))
  in
  let plaus_front =
    binop (Block.B_and 2) (cmp Block.C_le "8.0" geo) (cmp Block.C_ge "-8.0" geo)
  in
  (* N9/N10: curvature consistency delta * a_lat vs yaw. *)
  let curv = binop Block.B_sub (binop Block.B_mul delta a_lat) (gain "0.6" yaw) in
  let plaus_curv =
    binop (Block.B_and 2) (cmp Block.C_le "15.0" curv) (cmp Block.C_ge "-15.0" curv)
  in
  (* N11/N12: speed-energy window (moving, below top speed). *)
  let plaus_energy =
    binop (Block.B_and 2)
      (cmp Block.C_le "40000.0" v2)
      (cmp Block.C_ge "0.04" v2)
  in
  (* N13/N14: actuator range |u| <= 3. *)
  let actuator_ok =
    binop (Block.B_and 2) (cmp Block.C_le "3.0" u) (cmp Block.C_ge "-3.0" u)
  in
  (* N15/N16: the correction opposes the error: u*err within (0, 8]. *)
  let u_err = binop Block.B_mul u err in
  let opposing =
    binop (Block.B_and 2) (cmp Block.C_gt "0.0" u_err) (cmp Block.C_le "8.0" u_err)
  in
  (* N17/N18: side-slip proxy beta = a_lat / (v^2 + 1) bounded. *)
  let beta = binop Block.B_div a_lat (binop Block.B_add v2 (const "1.0")) in
  let beta_ok =
    binop (Block.B_and 2) (cmp Block.C_le "0.3" beta) (cmp Block.C_ge "-0.3" beta)
  in
  (* N19/N20: yaw authority (err * v) / L within actuator authority. *)
  let authority_sig = gain "0.357142857" (binop Block.B_mul err v) in
  let authority =
    binop (Block.B_and 2)
      (cmp Block.C_le "60.0" authority_sig)
      (cmp Block.C_ge "-60.0" authority_sig)
  in
  (* Controller decision structure. *)
  let sane =
    nary (Block.B_and 5)
      [ plaus_wheels; plaus_alat; plaus_front; plaus_curv; plaus_energy ]
  in
  let critical =
    binop (Block.B_and 2) (binop (Block.B_or 2) over under) (unop Block.B_not stable_lat)
  in
  let response_ok =
    nary (Block.B_and 4) [ actuator_ok; opposing; beta_ok; authority ]
  in
  (* ok = (sane and critical) => response_ok *)
  let premise = binop (Block.B_and 2) sane critical in
  let ok_core =
    binop (Block.B_or 2) (unop Block.B_not premise) response_ok
  in
  (* Self-test monitor cascade: tautological stages that model the
     redundant watchdog logic of the industrial design and reach the
     published clause count. *)
  let taut = binop (Block.B_or 2) plaus_wheels (unop Block.B_not plaus_wheels) in
  let chain =
    List.fold_left
      (fun acc arity -> nary (Block.B_and arity) (List.init arity (fun _ -> acc)))
      taut pad
  in
  let ok_final =
    if pad = [] then ok_core else binop (Block.B_and 2) ok_core chain
  in
  let out = add (Block.B_outport "ok") in
  wire ok_final out 0;
  d

let convert d =
  match Convert.diagram_to_ab ~name:"steering" ~output:"ok" d with
  | Ok p -> p
  | Error e -> failwith ("Steering.convert: " ^ e)

(* Choose the monitor cascade so the clause count matches Table 1. *)
let padding () =
  let base =
    Absolver_core.Ab_problem.(stats (convert (build ~pad:[]))).n_clauses
  in
  (* The taut stage itself (3 clauses) and the final AND (3 clauses) only
     appear when padding is non-empty. *)
  let fixed_overhead = 6 in
  let delta = target_clauses - base - fixed_overhead in
  if delta < 3 then failwith "Steering: core model larger than target size";
  let r = delta mod 3 in
  let arities =
    if r = 0 then List.init (delta / 3) (fun _ -> 2)
    else if r = 1 then 3 :: List.init ((delta - 4) / 3) (fun _ -> 2)
    else 4 :: List.init ((delta - 5) / 3) (fun _ -> 2)
  in
  arities

let diagram () = build ~pad:(padding ())

let lustre_node () =
  match Lustre.of_diagram ~name:"steering" (diagram ()) with
  | Ok n -> n
  | Error e -> failwith ("Steering.lustre_node: " ^ e)

let problem () = convert (diagram ())

let diagram_core_for_debug () = build ~pad:[]
