(** A plain-text serialization of block diagrams — the role the [.mdl]
    text format plays for real Simulink models. One directive per line:

    {v
    model <name>
    block <id> Inport <name> <lo|_> <hi|_> [int]
    block <id> Const <number>
    block <id> Add | Sub | Mul | Div | Not
    block <id> Gain <number>
    block <id> Sum <n> | And <n> | Or <n>
    block <id> Math sqrt|exp|log|sin|cos
    block <id> Pow <n>
    block <id> Compare <op> <number>
    block <id> Relop <op>
    block <id> Outport <name>
    wire <src-id> <dst-id> <port>
    v}

    Block ids must be declared densely from 0. [#] starts a comment. *)

val parse_string : string -> (string * Diagram.t, string) result
(** Returns the model name and the diagram. *)

val parse_file : string -> (string * Diagram.t, string) result
val to_string : name:string -> Diagram.t -> string
val write_file : string -> name:string -> Diagram.t -> unit
