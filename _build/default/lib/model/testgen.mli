(** Test-case generation — the future-work application of paper Sec. 6.

    "Since ABSOLVER, internally, determines the solutions by computing all
    possible assignments, common coverage metrics like path coverage can
    be obtained for free." This module realizes that: for a model output,
    every arithmetically feasible delta-valuation of the comparison atoms
    is one {e activation pattern} of the model's decision structure
    (a path through its logic), and the witness of each yields a concrete
    input vector driving that pattern. *)

type test_case = {
  inputs : (string * float) list; (** one value per inport *)
  output_value : bool; (** value of the chosen output under the pattern *)
  pattern : (int * bool) list;
      (** the delta-valuation: comparison atom -> truth value *)
}

type coverage = {
  cases : test_case list;
  patterns_total : int; (** feasible activation patterns found *)
  patterns_true : int; (** patterns driving the output to true *)
}

val generate :
  ?limit:int ->
  ?registry:Absolver_core.Registry.t ->
  output:string ->
  Diagram.t ->
  (coverage, string) result
(** Enumerate feasible activation patterns of [output] (both polarities)
    up to [limit] (default 256) and derive one concrete test vector per
    pattern. *)

val to_csv : coverage -> string
(** Header line with input names and the expected output, one row per
    test case — ready for a test bench. *)
