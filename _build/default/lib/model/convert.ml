module Q = Absolver_numeric.Rational
module Expr = Absolver_nlp.Expr
module Tseitin = Absolver_sat.Tseitin
module Ab_problem = Absolver_core.Ab_problem
module Linexpr = Absolver_lp.Linexpr

type goal = [ `Find_violation | `Find_witness ]

exception Conversion_error of string

let op_of_comparison = function
  | Block.C_lt -> Linexpr.Lt
  | Block.C_le -> Linexpr.Le
  | Block.C_gt -> Linexpr.Gt
  | Block.C_ge -> Linexpr.Ge
  | Block.C_eq -> Linexpr.Eq

(* Inline the node's equations: every signal maps to either an arithmetic
   expression over the inports, or a Boolean formula over comparison
   atoms. *)
type signal_value = V_arith of Expr.t | V_bool of Tseitin.formula

let node_to_ab ?(goal = `Find_violation) ~output (node : Lustre.node) =
  match
    let problem = Ab_problem.create () in
    (* Inports first: intern variables, record bounds and domains. *)
    let domains = Hashtbl.create 16 in
    List.iter
      (fun (inp : Lustre.input) ->
        let v = Ab_problem.intern_arith_var problem inp.Lustre.in_name in
        Hashtbl.replace domains v
          (if inp.Lustre.in_integer then Ab_problem.Dint else Ab_problem.Dreal);
        match (inp.Lustre.in_lo, inp.Lustre.in_hi) with
        | None, None -> ()
        | lo, hi -> Ab_problem.set_bounds problem v ?lower:lo ?upper:hi ())
      node.Lustre.inputs;
    (* Comparison atoms are shared through a table keyed on the normalized
       relation. *)
    let atoms : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let next_bool = ref 0 in
    let fresh_bool () =
      let v = !next_bool in
      incr next_bool;
      v
    in
    let atom_of_rel domain (rel : Expr.rel) =
      let key =
        Format.asprintf "%s|%a" (Expr.to_string rel.Expr.expr) Linexpr.pp_op
          rel.Expr.op
      in
      match Hashtbl.find_opt atoms key with
      | Some v -> v
      | None ->
        let v = fresh_bool () in
        Hashtbl.add atoms key v;
        Ab_problem.define problem ~bool_var:v ~domain rel;
        v
    in
    let values : (string, signal_value) Hashtbl.t = Hashtbl.create 64 in
    let lookup s =
      match Hashtbl.find_opt values s with
      | Some v -> v
      | None -> (
        (* Must be an inport. *)
        match Ab_problem.arith_var_index problem s with
        | Some v -> V_arith (Expr.var v)
        | None -> raise (Conversion_error (Printf.sprintf "undefined signal %s" s)))
    in
    let as_arith s v =
      match v with
      | V_arith e -> e
      | V_bool _ -> raise (Conversion_error (Printf.sprintf "signal %s: expected numeric" s))
    in
    let as_bool s v =
      match v with
      | V_bool f -> f
      | V_arith _ -> raise (Conversion_error (Printf.sprintf "signal %s: expected Boolean" s))
    in
    let domain_of_expr e =
      (* An atom is integer-domain when all its variables are integer. *)
      let vars = Expr.vars e in
      if
        vars <> []
        && List.for_all
             (fun v -> Hashtbl.find_opt domains v = Some Ab_problem.Dint)
             vars
      then Ab_problem.Dint
      else Ab_problem.Dreal
    in
    let rec eval (e : Lustre.expr) : signal_value =
      match e with
      | Lustre.E_var s -> lookup s
      | Lustre.E_const_q q -> V_arith (Expr.const q)
      | Lustre.E_const_b b -> V_bool (if b then Tseitin.True else Tseitin.False)
      | Lustre.E_add (a, b) -> V_arith (Expr.add (arith a) (arith b))
      | Lustre.E_sub (a, b) -> V_arith (Expr.sub (arith a) (arith b))
      | Lustre.E_mul (a, b) -> V_arith (Expr.mul (arith a) (arith b))
      | Lustre.E_div (a, b) -> V_arith (Expr.div (arith a) (arith b))
      | Lustre.E_pow (a, n) -> V_arith (Expr.pow (arith a) n)
      | Lustre.E_math (f, a) ->
        let ea = arith a in
        V_arith
          (match f with
          | Block.M_sqrt -> Expr.sqrt ea
          | Block.M_exp -> Expr.exp ea
          | Block.M_log -> Expr.log ea
          | Block.M_sin -> Expr.sin ea
          | Block.M_cos -> Expr.cos ea)
      | Lustre.E_cmp (c, a, b) ->
        let diff = Expr.sub (arith a) (arith b) in
        let rel = { Expr.expr = diff; op = op_of_comparison c; tag = 0 } in
        let v = atom_of_rel (domain_of_expr diff) rel in
        V_bool (Tseitin.atom v)
      | Lustre.E_and es -> V_bool (Tseitin.and_ (List.map boolean es))
      | Lustre.E_or es -> V_bool (Tseitin.or_ (List.map boolean es))
      | Lustre.E_not a -> V_bool (Tseitin.not_ (boolean a))
      | Lustre.E_delay _ ->
        raise
          (Conversion_error
             "delay in a combinational conversion: use node_to_ab_bmc")
    and arith e = as_arith "<expr>" (eval e)
    and boolean e = as_bool "<expr>" (eval e) in
    List.iter
      (fun (eq : Lustre.equation) ->
        Hashtbl.replace values eq.Lustre.lhs (eval eq.Lustre.rhs))
      node.Lustre.equations;
    let out_formula =
      match Hashtbl.find_opt values output with
      | Some (V_bool f) -> f
      | Some (V_arith _) ->
        raise (Conversion_error (Printf.sprintf "output %s is numeric" output))
      | None -> raise (Conversion_error (Printf.sprintf "unknown output %s" output))
    in
    let formula =
      match goal with
      | `Find_violation -> Tseitin.not_ out_formula
      | `Find_witness -> out_formula
    in
    let clauses, n_vars = Tseitin.assert_cnf ~num_vars:!next_bool formula in
    Ab_problem.ensure_bool_vars problem n_vars;
    List.iter (Ab_problem.add_clause problem) clauses;
    Ab_problem.set_projection problem (List.init !next_bool Fun.id);
    (match Ab_problem.validate problem with
    | Ok () -> ()
    | Error e -> raise (Conversion_error e));
    problem
  with
  | problem -> Ok problem
  | exception Conversion_error msg -> Error msg

let diagram_to_ab ?goal ?(name = "model") ~output d =
  match Lustre.of_diagram ~name d with
  | Error e -> Error e
  | Ok node -> node_to_ab ?goal ~output node

(* ------------------------------------------------------------------ *)
(* Bounded model checking of stateful nodes: unroll [steps] instants,
   fresh inport variables per instant, delays referring to the previous
   instant (or their initial value at instant 0). *)

let node_to_ab_bmc ?(goal = `Find_violation) ~steps ~output (node : Lustre.node) =
  if steps < 1 then Error "node_to_ab_bmc: steps must be >= 1"
  else
    match
      let problem = Ab_problem.create () in
      let domains = Hashtbl.create 16 in
      let inport_var name t =
        Ab_problem.intern_arith_var problem (Printf.sprintf "%s@%d" name t)
      in
      List.iter
        (fun (inp : Lustre.input) ->
          for t = 0 to steps - 1 do
            let v = inport_var inp.Lustre.in_name t in
            Hashtbl.replace domains v
              (if inp.Lustre.in_integer then Ab_problem.Dint else Ab_problem.Dreal);
            match (inp.Lustre.in_lo, inp.Lustre.in_hi) with
            | None, None -> ()
            | lo, hi -> Ab_problem.set_bounds problem v ?lower:lo ?upper:hi ()
          done)
        node.Lustre.inputs;
      let atoms : (string, int) Hashtbl.t = Hashtbl.create 16 in
      let next_bool = ref 0 in
      let fresh_bool () =
        let v = !next_bool in
        incr next_bool;
        v
      in
      let atom_of_rel domain (rel : Expr.rel) =
        let key =
          Format.asprintf "%s|%a" (Expr.to_string rel.Expr.expr) Linexpr.pp_op
            rel.Expr.op
        in
        match Hashtbl.find_opt atoms key with
        | Some v -> v
        | None ->
          let v = fresh_bool () in
          Hashtbl.add atoms key v;
          Ab_problem.define problem ~bool_var:v ~domain rel;
          v
      in
      let is_input name =
        List.exists (fun (i : Lustre.input) -> i.Lustre.in_name = name) node.Lustre.inputs
      in
      let equation_of name =
        List.find_opt (fun (eq : Lustre.equation) -> eq.Lustre.lhs = name) node.Lustre.equations
      in
      (* Memoized per-instant evaluation of signals. *)
      let memo : (string * int, signal_value) Hashtbl.t = Hashtbl.create 64 in
      let domain_of_expr e =
        let vars = Expr.vars e in
        if
          vars <> []
          && List.for_all
               (fun v -> Hashtbl.find_opt domains v = Some Ab_problem.Dint)
               vars
        then Ab_problem.Dint
        else Ab_problem.Dreal
      in
      let rec signal name t : signal_value =
        match Hashtbl.find_opt memo (name, t) with
        | Some v -> v
        | None ->
          let v =
            if is_input name then V_arith (Expr.var (inport_var name t))
            else
              match equation_of name with
              | Some eq -> eval t eq.Lustre.rhs
              | None ->
                raise (Conversion_error (Printf.sprintf "undefined signal %s" name))
          in
          Hashtbl.replace memo (name, t) v;
          v
      and eval t (e : Lustre.expr) : signal_value =
        let arith e =
          match eval t e with
          | V_arith x -> x
          | V_bool _ -> raise (Conversion_error "expected numeric")
        in
        let boolean e =
          match eval t e with
          | V_bool f -> f
          | V_arith _ -> raise (Conversion_error "expected Boolean")
        in
        match e with
        | Lustre.E_var s -> signal s t
        | Lustre.E_const_q q -> V_arith (Expr.const q)
        | Lustre.E_const_b b -> V_bool (if b then Tseitin.True else Tseitin.False)
        | Lustre.E_add (a, b) -> V_arith (Expr.add (arith a) (arith b))
        | Lustre.E_sub (a, b) -> V_arith (Expr.sub (arith a) (arith b))
        | Lustre.E_mul (a, b) -> V_arith (Expr.mul (arith a) (arith b))
        | Lustre.E_div (a, b) -> V_arith (Expr.div (arith a) (arith b))
        | Lustre.E_pow (a, n) -> V_arith (Expr.pow (arith a) n)
        | Lustre.E_math (f, a) ->
          let ea = arith a in
          V_arith
            (match f with
            | Block.M_sqrt -> Expr.sqrt ea
            | Block.M_exp -> Expr.exp ea
            | Block.M_log -> Expr.log ea
            | Block.M_sin -> Expr.sin ea
            | Block.M_cos -> Expr.cos ea)
        | Lustre.E_cmp (c, a, b) ->
          let diff = Expr.sub (arith a) (arith b) in
          let rel = { Expr.expr = diff; op = op_of_comparison c; tag = 0 } in
          V_bool (Tseitin.atom (atom_of_rel (domain_of_expr diff) rel))
        | Lustre.E_and es -> V_bool (Tseitin.and_ (List.map boolean es))
        | Lustre.E_or es -> V_bool (Tseitin.or_ (List.map boolean es))
        | Lustre.E_not a -> V_bool (Tseitin.not_ (boolean a))
        | Lustre.E_delay (init, a) ->
          if t = 0 then V_arith (Expr.const init)
          else (
            match eval (t - 1) a with
            | V_arith x -> V_arith x
            | V_bool _ -> raise (Conversion_error "Boolean delay unsupported"))
      in
      let out_at t =
        match signal output t with
        | V_bool f -> f
        | V_arith _ ->
          raise (Conversion_error (Printf.sprintf "output %s is numeric" output))
      in
      let instants = List.init steps out_at in
      let formula =
        match goal with
        | `Find_violation -> Tseitin.or_ (List.map Tseitin.not_ instants)
        | `Find_witness -> Tseitin.or_ instants
      in
      let clauses, n_vars = Tseitin.assert_cnf ~num_vars:!next_bool formula in
      Ab_problem.ensure_bool_vars problem n_vars;
      List.iter (Ab_problem.add_clause problem) clauses;
      Ab_problem.set_projection problem (List.init !next_bool Fun.id);
      (match Ab_problem.validate problem with
      | Ok () -> ()
      | Error e -> raise (Conversion_error e));
      problem
    with
    | problem -> Ok problem
    | exception Conversion_error msg -> Error msg

let diagram_to_ab_bmc ?goal ?(name = "model") ~steps ~output d =
  match Lustre.of_diagram ~name d with
  | Error e -> Error e
  | Ok node -> node_to_ab_bmc ?goal ~steps ~output node
