(** A LUSTRE-like dataflow core language.

    The paper's conversion work-flow (Fig. 3) goes
    MATLAB/Simulink → SCADE/LUSTRE → multi-domain constraint problem;
    SCADE's textual LUSTRE representation is "merely a matter of
    convenience" there. This module is that intermediate step: every block
    of a diagram becomes one equation of a node, from which
    {!Convert.node_to_ab} extracts the AB-problem. *)

module Q = Absolver_numeric.Rational

type ty = T_real | T_bool

type expr =
  | E_var of string
  | E_const_q of Q.t
  | E_const_b of bool
  | E_add of expr * expr
  | E_sub of expr * expr
  | E_mul of expr * expr
  | E_div of expr * expr
  | E_pow of expr * int
  | E_math of Block.math_fn * expr
  | E_cmp of Block.comparison * expr * expr
  | E_and of expr list
  | E_or of expr list
  | E_not of expr
  | E_delay of Q.t * expr
      (** [init -> pre e]: the LUSTRE initialized-delay idiom. *)

type input = {
  in_name : string;
  in_lo : Q.t option;
  in_hi : Q.t option;
  in_integer : bool;
}

type equation = { lhs : string; ty : ty; rhs : expr }

type node = {
  node_name : string;
  inputs : input list;
  outputs : string list; (** Boolean observation signals. *)
  equations : equation list; (** In dependency order. *)
}

val of_diagram : name:string -> Diagram.t -> (node, string) Stdlib.result
(** One equation per block ([sig_<id>] signal names; inports keep their
    names). Validates the diagram first. *)

val to_string : node -> string
(** Textual LUSTRE-like rendering (node header, var section, equations). *)

val signal_ty : node -> string -> ty option
