(** The automated conversion work-flow of paper Fig. 3:
    Simulink-like diagram → LUSTRE-like node → AB-problem in ABSOLVER's
    input format.

    Verification reading: for a Boolean outport [ok], [`Find_violation]
    asserts [not ok] — a SAT answer is a counterexample to the property,
    UNSAT proves it over the modelled input ranges. [`Find_witness]
    asserts [ok] itself. *)

type goal = [ `Find_violation | `Find_witness ]

val node_to_ab :
  ?goal:goal ->
  output:string ->
  Lustre.node ->
  (Absolver_core.Ab_problem.t, string) Stdlib.result
(** Extract the constraint problem for one output of a node: arithmetic
    comparisons become definitional Boolean variables, the Boolean
    structure is clausified (Tseitin), inport ranges become bounds. *)

val diagram_to_ab :
  ?goal:goal ->
  ?name:string ->
  output:string ->
  Diagram.t ->
  (Absolver_core.Ab_problem.t, string) Stdlib.result
(** Full chain: {!Lustre.of_diagram} followed by {!node_to_ab}. *)

(** {1 Bounded model checking}

    Stateful models (with {!Block.B_delay} / LUSTRE [pre]) are analysed by
    unrolling: each instant gets fresh inport variables ([name@t]) and its
    own comparison atoms; delays read the previous instant (their initial
    value at instant 0). [`Find_violation] asks whether the output can be
    false at {e any} of the [steps] instants. *)

val node_to_ab_bmc :
  ?goal:goal ->
  steps:int ->
  output:string ->
  Lustre.node ->
  (Absolver_core.Ab_problem.t, string) Stdlib.result

val diagram_to_ab_bmc :
  ?goal:goal ->
  ?name:string ->
  steps:int ->
  output:string ->
  Diagram.t ->
  (Absolver_core.Ab_problem.t, string) Stdlib.result
