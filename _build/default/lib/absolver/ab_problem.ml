module Q = Absolver_numeric.Rational
module Expr = Absolver_nlp.Expr
module Types = Absolver_sat.Types
module Circuit = Absolver_circuit.Circuit
module Linexpr = Absolver_lp.Linexpr

type domain = Dint | Dreal

let pp_domain fmt d =
  Format.pp_print_string fmt (match d with Dint -> "int" | Dreal -> "real")

type def = { bool_var : Types.var; domain : domain; rel : Expr.rel }

type t = {
  mutable num_bool_vars : int;
  mutable clauses_rev : Types.lit list list;
  (* A Boolean variable may carry several definitions (paper Fig. 2 links
     variable 1 to both [i >= 0] and [j >= 0]): the variable is delta-linked
     to their conjunction.  Stored newest-first. *)
  defs_tbl : (Types.var, def list) Hashtbl.t;
  mutable def_order : Types.var list; (* insertion order, newest first *)
  names : (string, int) Hashtbl.t;
  mutable names_rev : string array;
  mutable n_arith : int;
  bounds_tbl : (int, Q.t option * Q.t option) Hashtbl.t;
  mutable projection : Types.var list option;
}

let create () =
  {
    num_bool_vars = 0;
    clauses_rev = [];
    defs_tbl = Hashtbl.create 16;
    def_order = [];
    names = Hashtbl.create 16;
    names_rev = Array.make 16 "";
    n_arith = 0;
    bounds_tbl = Hashtbl.create 16;
    projection = None;
  }

let ensure_bool_vars t n = if n > t.num_bool_vars then t.num_bool_vars <- n

let add_clause t lits =
  List.iter (fun l -> ensure_bool_vars t (Types.var_of l + 1)) lits;
  t.clauses_rev <- lits :: t.clauses_rev

let intern_arith_var t name =
  match Hashtbl.find_opt t.names name with
  | Some i -> i
  | None ->
    let i = t.n_arith in
    if i >= Array.length t.names_rev then begin
      let a = Array.make (2 * Array.length t.names_rev) "" in
      Array.blit t.names_rev 0 a 0 i;
      t.names_rev <- a
    end;
    t.names_rev.(i) <- name;
    Hashtbl.add t.names name i;
    t.n_arith <- i + 1;
    i

let arith_var_name t i =
  if i < 0 || i >= t.n_arith then invalid_arg "Ab_problem.arith_var_name"
  else t.names_rev.(i)

let arith_var_index t name = Hashtbl.find_opt t.names name
let num_arith_vars t = t.n_arith

let define t ~bool_var ~domain rel =
  ensure_bool_vars t (bool_var + 1);
  let rel = { rel with Expr.tag = bool_var } in
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.defs_tbl bool_var) in
  let duplicate =
    List.exists
      (fun d ->
        d.domain = domain
        && Expr.equal d.rel.Expr.expr rel.Expr.expr
        && d.rel.Expr.op = rel.Expr.op)
      existing
  in
  if not duplicate then begin
    if existing = [] then t.def_order <- bool_var :: t.def_order;
    Hashtbl.replace t.defs_tbl bool_var ({ bool_var; domain; rel } :: existing)
  end

let set_bounds t v ?lower ?upper () =
  if v < 0 || v >= t.n_arith then invalid_arg "Ab_problem.set_bounds";
  let lo0, hi0 =
    Option.value ~default:(None, None) (Hashtbl.find_opt t.bounds_tbl v)
  in
  let pick newer older = match newer with Some _ -> newer | None -> older in
  Hashtbl.replace t.bounds_tbl v (pick lower lo0, pick upper hi0)

let num_bool_vars t = t.num_bool_vars
let clauses t = List.rev t.clauses_rev

let defs t =
  List.rev t.def_order
  |> List.concat_map (fun v ->
       List.rev (Option.value ~default:[] (Hashtbl.find_opt t.defs_tbl v)))

let find_defs t v =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.defs_tbl v))

let defined_vars t = List.rev t.def_order

let bounds t =
  Hashtbl.fold (fun v b acc -> (v, b) :: acc) t.bounds_tbl []
  |> List.sort compare

let set_projection t vars = t.projection <- Some (List.sort_uniq compare vars)
let projection t = t.projection

let bounds_tag = -2

let bound_rels t =
  List.concat_map
    (fun (v, (lo, hi)) ->
      let mk q op =
        (* x - q op 0 *)
        {
          Expr.expr = Expr.sub (Expr.var v) (Expr.const q);
          op;
          tag = bounds_tag;
        }
      in
      (match lo with Some q -> [ mk q Linexpr.Ge ] | None -> [])
      @ (match hi with Some q -> [ mk q Linexpr.Le ] | None -> []))
    (bounds t)

type problem_stats = {
  n_clauses : int;
  n_bool_vars : int;
  n_linear : int;
  n_nonlinear : int;
  n_int_defs : int;
  n_real_defs : int;
}

let stats t =
  let ds = defs t in
  let n_linear = List.length (List.filter (fun d -> Expr.is_linear d.rel.Expr.expr) ds) in
  {
    n_clauses = List.length t.clauses_rev;
    n_bool_vars = t.num_bool_vars;
    n_linear;
    n_nonlinear = List.length ds - n_linear;
    n_int_defs = List.length (List.filter (fun d -> d.domain = Dint) ds);
    n_real_defs = List.length (List.filter (fun d -> d.domain = Dreal) ds);
  }

let pp_stats fmt s =
  Format.fprintf fmt "#Cl. %d  #Var. %d  #linear %d  #nonlin. %d" s.n_clauses
    s.n_bool_vars s.n_linear s.n_nonlinear

let to_circuit t =
  let b = Circuit.builder () in
  let lit_node l =
    let v = Types.var_of l in
    let base =
      match find_defs t v with
      | [] -> Circuit.input b v
      | [ d ] -> Circuit.cmp b d.rel.Expr.expr d.rel.Expr.op
      | ds ->
        Circuit.and_ b
          (List.map (fun d -> Circuit.cmp b d.rel.Expr.expr d.rel.Expr.op) ds)
    in
    if Types.is_pos l then base else Circuit.not_ b base
  in
  let clause_nodes =
    List.map (fun clause -> Circuit.or_ b (List.map lit_node clause)) (clauses t)
  in
  let out = Circuit.and_ b clause_nodes in
  Circuit.seal b ~output:out

let validate t =
  let problems = ref [] in
  let err fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  List.iter
    (fun clause ->
      if clause = [] then err "empty clause";
      List.iter
        (fun l ->
          let v = Types.var_of l in
          if v < 0 || v >= t.num_bool_vars then
            err "literal %d out of range" (Types.to_dimacs l))
        clause)
    (clauses t);
  Hashtbl.iter
    (fun v ds ->
      if v < 0 || v >= t.num_bool_vars then
        err "definition for out-of-range variable %d" (v + 1);
      List.iter
        (fun (d : def) ->
          List.iter
            (fun av ->
              if av < 0 || av >= t.n_arith then
                err "definition of %d references unknown arith var %d" (v + 1) av)
            (Expr.vars d.rel.Expr.expr))
        ds)
    t.defs_tbl;
  Hashtbl.iter
    (fun v _ ->
      if v < 0 || v >= t.n_arith then err "bounds on unknown arith var %d" v)
    t.bounds_tbl;
  match !problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " (List.rev ps))
