module Q = Absolver_numeric.Rational
module Expr = Absolver_nlp.Expr
module Types = Absolver_sat.Types
module Linexpr = Absolver_lp.Linexpr

(* ------------------------------------------------------------------ *)
(* Lexer for arithmetic expressions and relations.                     *)

type token =
  | T_num of Q.t
  | T_ident of string
  | T_plus
  | T_minus
  | T_star
  | T_slash
  | T_caret
  | T_lparen
  | T_rparen
  | T_cmp of Linexpr.op
  | T_eof

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '+' then (push T_plus; incr i)
    else if c = '-' then (push T_minus; incr i)
    else if c = '*' then (push T_star; incr i)
    else if c = '/' then (push T_slash; incr i)
    else if c = '^' then (push T_caret; incr i)
    else if c = '(' then (push T_lparen; incr i)
    else if c = ')' then (push T_rparen; incr i)
    else if c = '<' then
      if !i + 1 < n && s.[!i + 1] = '=' then (push (T_cmp Linexpr.Le); i := !i + 2)
      else (push (T_cmp Linexpr.Lt); incr i)
    else if c = '>' then
      if !i + 1 < n && s.[!i + 1] = '=' then (push (T_cmp Linexpr.Ge); i := !i + 2)
      else (push (T_cmp Linexpr.Gt); incr i)
    else if c = '=' then
      if !i + 1 < n && s.[!i + 1] = '=' then (push (T_cmp Linexpr.Eq); i := !i + 2)
      else (push (T_cmp Linexpr.Eq); incr i)
    else if (c >= '0' && c <= '9') || c = '.' then begin
      let start = !i in
      let seen_e = ref false in
      let continue = ref true in
      while !continue && !i < n do
        let d = s.[!i] in
        if (d >= '0' && d <= '9') || d = '.' then incr i
        else if (d = 'e' || d = 'E') && not !seen_e
                && !i + 1 < n
                && (let nx = s.[!i + 1] in
                    (nx >= '0' && nx <= '9') || nx = '-' || nx = '+')
        then begin
          seen_e := true;
          i := !i + 2
        end
        else continue := false
      done;
      let text = String.sub s start (!i - start) in
      match Q.of_decimal_string text with
      | q -> push (T_num q)
      | exception Invalid_argument _ -> fail "malformed number %S" text
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !i in
      while
        !i < n
        &&
        let d = s.[!i] in
        (d >= 'a' && d <= 'z')
        || (d >= 'A' && d <= 'Z')
        || (d >= '0' && d <= '9')
        || d = '_' || d = '.' || d = '\''
      do
        incr i
      done;
      push (T_ident (String.sub s start (!i - start)))
    end
    else fail "unexpected character %C" c
  done;
  List.rev (T_eof :: !toks)

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser.                                           *)

type parser_state = { mutable toks : token list }

let peek st = match st.toks with t :: _ -> t | [] -> T_eof
let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok msg =
  if peek st = tok then advance st else fail "expected %s" msg

let functions = [ "sqrt"; "exp"; "log"; "sin"; "cos" ]

let rec parse_sum problem st =
  let lhs = parse_product problem st in
  let rec loop acc =
    match peek st with
    | T_plus ->
      advance st;
      loop (Expr.add acc (parse_product problem st))
    | T_minus ->
      advance st;
      loop (Expr.sub acc (parse_product problem st))
    | T_num _ | T_ident _ | T_star | T_slash | T_caret | T_lparen | T_rparen
    | T_cmp _ | T_eof ->
      acc
  in
  loop lhs

and parse_product problem st =
  let lhs = parse_factor problem st in
  let rec loop acc =
    match peek st with
    | T_star ->
      advance st;
      loop (Expr.mul acc (parse_factor problem st))
    | T_slash ->
      advance st;
      loop (Expr.div acc (parse_factor problem st))
    | T_num _ | T_ident _ | T_plus | T_minus | T_caret | T_lparen | T_rparen
    | T_cmp _ | T_eof ->
      acc
  in
  loop lhs

and parse_factor problem st =
  match peek st with
  | T_minus ->
    advance st;
    Expr.neg (parse_factor problem st)
  | T_plus ->
    advance st;
    parse_factor problem st
  | T_num _ | T_ident _ | T_lparen -> parse_power problem st
  | T_star | T_slash | T_caret | T_rparen | T_cmp _ | T_eof ->
    fail "expected a factor"

and parse_power problem st =
  let base = parse_atom problem st in
  match peek st with
  | T_caret -> (
    advance st;
    match peek st with
    | T_num q when Q.is_integer q ->
      advance st;
      Expr.pow base (Absolver_numeric.Bigint.to_int (Q.num q))
    | T_minus -> (
      advance st;
      match peek st with
      | T_num q when Q.is_integer q ->
        advance st;
        Expr.pow base (-Absolver_numeric.Bigint.to_int (Q.num q))
      | _ -> fail "expected integer exponent after '^-'")
    | _ -> fail "expected integer exponent after '^'")
  | _ -> base

and parse_atom problem st =
  match peek st with
  | T_num q ->
    advance st;
    Expr.const q
  | T_lparen ->
    advance st;
    let e = parse_sum problem st in
    expect st T_rparen "')'";
    e
  | T_ident name when List.mem name functions ->
    advance st;
    expect st T_lparen (Printf.sprintf "'(' after %s" name);
    let arg = parse_sum problem st in
    expect st T_rparen "')'";
    (match name with
    | "sqrt" -> Expr.sqrt arg
    | "exp" -> Expr.exp arg
    | "log" -> Expr.log arg
    | "sin" -> Expr.sin arg
    | "cos" -> Expr.cos arg
    | _ -> assert false)
  | T_ident name ->
    advance st;
    Expr.var (Ab_problem.intern_arith_var problem name)
  | T_plus | T_minus | T_star | T_slash | T_caret | T_rparen | T_cmp _ | T_eof
    ->
    fail "expected a number, variable or '('"

let parse_expr problem text =
  match
    let st = { toks = tokenize text } in
    let e = parse_sum problem st in
    if peek st <> T_eof then fail "trailing tokens after expression";
    e
  with
  | e -> Ok e
  | exception Parse_error msg -> Error msg

let parse_rel_exn problem text =
  let st = { toks = tokenize text } in
  let lhs = parse_sum problem st in
  let op =
    match peek st with
    | T_cmp op ->
      advance st;
      op
    | _ -> fail "expected a comparison operator"
  in
  let rhs = parse_sum problem st in
  if peek st <> T_eof then fail "trailing tokens after relation";
  { Expr.expr = Expr.sub lhs rhs; op; tag = 0 }

let parse_rel problem text =
  match parse_rel_exn problem text with
  | r -> Ok r
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* File-level parsing.                                                 *)

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse_string text =
  let problem = Ab_problem.create () in
  let error = ref None in
  let set_error line_no msg =
    if !error = None then
      error := Some (Printf.sprintf "line %d: %s" line_no msg)
  in
  let current = ref [] in
  let handle_def line_no rest =
    (* rest = "int 1 i >= 0" *)
    match split_ws rest with
    | domain_s :: var_s :: _ -> (
      let domain =
        match domain_s with
        | "int" -> Some Ab_problem.Dint
        | "real" -> Some Ab_problem.Dreal
        | _ -> None
      in
      match (domain, int_of_string_opt var_s) with
      | Some domain, Some dimacs_var when dimacs_var > 0 -> (
        (* Everything after the variable token is the relation. *)
        let prefix_len =
          (* find position after the 2nd token in the original string *)
          let rec skip i remaining =
            if remaining = 0 then i
            else if i >= String.length rest then i
            else if rest.[i] = ' ' || rest.[i] = '\t' then
              let rec eat j =
                if j < String.length rest && (rest.[j] = ' ' || rest.[j] = '\t')
                then eat (j + 1)
                else j
              in
              skip (eat i) (remaining - 1)
            else skip (i + 1) remaining
          in
          let rec eat j =
            if j < String.length rest && (rest.[j] = ' ' || rest.[j] = '\t') then
              eat (j + 1)
            else j
          in
          skip (eat 0) 2
        in
        let rel_text = String.sub rest prefix_len (String.length rest - prefix_len) in
        match parse_rel problem rel_text with
        | Ok rel ->
          Ab_problem.define problem ~bool_var:(dimacs_var - 1) ~domain rel
        | Error msg -> set_error line_no msg)
      | _ -> set_error line_no "malformed def line")
    | _ -> set_error line_no "malformed def line"
  in
  let handle_bound line_no rest =
    match split_ws rest with
    | [ name; lo_s; hi_s ] -> (
      let v = Ab_problem.intern_arith_var problem name in
      let parse_opt s =
        if s = "_" then Ok None
        else
          match Q.of_decimal_string s with
          | q -> Ok (Some q)
          | exception Invalid_argument m -> Error m
      in
      match (parse_opt lo_s, parse_opt hi_s) with
      | Ok lo, Ok hi -> Ab_problem.set_bounds problem v ?lower:lo ?upper:hi ()
      | Error m, _ | _, Error m -> set_error line_no m)
    | _ -> set_error line_no "malformed bound line"
  in
  let handle_line line_no line =
    let line = String.trim line in
    if line = "" then ()
    else if String.length line >= 1 && line.[0] = 'c' then begin
      let body = String.sub line 1 (String.length line - 1) |> String.trim in
      if String.length body >= 4 && String.sub body 0 4 = "def " then
        handle_def line_no (String.sub body 4 (String.length body - 4))
      else if String.length body >= 6 && String.sub body 0 6 = "bound " then
        handle_bound line_no (String.sub body 6 (String.length body - 6))
      else () (* plain comment *)
    end
    else if line.[0] = 'p' then begin
      match split_ws line with
      | [ "p"; "cnf"; v; _c ] -> (
        match int_of_string_opt v with
        | Some v -> Ab_problem.ensure_bool_vars problem v
        | None -> set_error line_no "malformed problem line")
      | _ -> set_error line_no "malformed problem line"
    end
    else
      List.iter
        (fun tok ->
          match int_of_string_opt tok with
          | None -> set_error line_no (Printf.sprintf "bad literal %S" tok)
          | Some 0 ->
            Ab_problem.add_clause problem (List.rev !current);
            current := []
          | Some lit -> current := Types.of_dimacs lit :: !current)
        (split_ws line)
  in
  List.iteri (fun i l -> handle_line (i + 1) l) (String.split_on_char '\n' text);
  if !current <> [] then Ab_problem.add_clause problem (List.rev !current);
  match !error with
  | Some msg -> Error msg
  | None -> (
    match Ab_problem.validate problem with
    | Ok () -> Ok problem
    | Error msg -> Error msg)

let parse_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    parse_string content

let to_string problem =
  let buf = Buffer.create 1024 in
  let clauses = Ab_problem.clauses problem in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n"
       (Ab_problem.num_bool_vars problem)
       (List.length clauses));
  List.iter
    (fun clause ->
      List.iter
        (fun l -> Buffer.add_string buf (string_of_int (Types.to_dimacs l) ^ " "))
        clause;
      Buffer.add_string buf "0\n")
    clauses;
  let name v = Ab_problem.arith_var_name problem v in
  List.iter
    (fun (d : Ab_problem.def) ->
      Buffer.add_string buf
        (Format.asprintf "c def %a %d %s %a 0\n" Ab_problem.pp_domain d.domain
           (d.bool_var + 1)
           (Expr.to_string ~name d.rel.Expr.expr)
           Linexpr.pp_op d.rel.Expr.op))
    (Ab_problem.defs problem);
  List.iter
    (fun (v, (lo, hi)) ->
      let s = function None -> "_" | Some q -> Q.to_string q in
      Buffer.add_string buf
        (Printf.sprintf "c bound %s %s %s\n" (name v) (s lo) (s hi)))
    (Ab_problem.bounds problem);
  Buffer.contents buf

let write_file path problem =
  let oc = open_out path in
  output_string oc (to_string problem);
  close_out oc
