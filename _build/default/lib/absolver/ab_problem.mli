(** AB-problems (Sec. 2): a Boolean CNF skeleton in which designated
    Boolean variables are definitionally linked to arithmetic constraints
    over integer or real variables — the class of arithmetic-Boolean
    satisfiability problems ABSOLVER decides.

    Boolean variables are 0-based internally (DIMACS 1-based at the text
    layer). Arithmetic variables are interned strings. *)

module Q = Absolver_numeric.Rational
module Expr = Absolver_nlp.Expr
module Types = Absolver_sat.Types

type domain = Dint | Dreal

val pp_domain : Format.formatter -> domain -> unit

type def = {
  bool_var : Types.var;
      (** The Boolean variable δ-linked to the constraint (Sec. 1:
          [forall a : delta(a) <=> alpha(v_a)]). *)
  domain : domain;
  rel : Expr.rel; (** Normalized [expr op 0]; [rel.tag = bool_var]. *)
}

type t

(** {1 Construction} *)

val create : unit -> t

val ensure_bool_vars : t -> int -> unit
val add_clause : t -> Types.lit list -> unit

val intern_arith_var : t -> string -> int
(** Intern an arithmetic variable name, yielding its dense index. *)

val arith_var_name : t -> int -> string
val arith_var_index : t -> string -> int option
val num_arith_vars : t -> int

val define : t -> bool_var:Types.var -> domain:domain -> Expr.rel -> unit
(** Attach an arithmetic constraint to a Boolean variable. A variable may
    carry several definitions; it is then delta-linked to their
    {e conjunction} (paper Fig. 2 links variable 1 to both [i >= 0] and
    [j >= 0]). Exact duplicates are ignored. *)

val set_bounds : t -> int -> ?lower:Q.t -> ?upper:Q.t -> unit -> unit
(** Unconditional range for an arithmetic variable (e.g. a sensor range of
    the case study); enforced in every arithmetic subproblem. *)

(** {1 Observation} *)

val num_bool_vars : t -> int
val clauses : t -> Types.lit list list
val defs : t -> def list
(** All definitions, grouped by variable in insertion order. *)

val find_defs : t -> Types.var -> def list
(** The definitions of one variable (conjunction), oldest first. *)

val defined_vars : t -> Types.var list
val bounds : t -> (int * (Q.t option * Q.t option)) list
val bound_rels : t -> Expr.rel list
(** The bounds as relations (tagged with {!bounds_tag}). *)

val bounds_tag : int
(** Distinguished tag carried by bound constraints in conflict sets. *)

val set_projection : t -> Types.var list -> unit
(** Declare the semantically meaningful Boolean variables. Model
    enumeration then counts and blocks models modulo the remaining
    (auxiliary, e.g. Tseitin) variables. Converters set this to the
    comparison atoms. *)

val projection : t -> Types.var list option

(** {1 Statistics (the columns of the paper's Table 1)} *)

type problem_stats = {
  n_clauses : int;
  n_bool_vars : int;
  n_linear : int;
  n_nonlinear : int;
  n_int_defs : int;
  n_real_defs : int;
}

val stats : t -> problem_stats
val pp_stats : Format.formatter -> problem_stats -> unit

(** {1 Circuit view (paper Fig. 5)} *)

val to_circuit : t -> Absolver_circuit.Circuit.t

(** {1 Validation} *)

val validate : t -> (unit, string) result
(** Structural checks: literals within range, at most one definition per
    Boolean variable, definitions reference interned variables, bounds
    reference interned variables. *)
