(** ABSOLVER's input language (paper Sec. 1.1, Fig. 2): standard DIMACS
    CNF, with arithmetic constraint definitions carried in comment lines

    {v
    c def int 1 i >= 0
    c def real 4 a * x + 3.5 / ( 4 - y ) + 2 * y >= 7.1
    v}

    so that any Boolean solver unaware of the extension still accepts the
    file. Two further comment forms are ours (documented extensions):

    {v
    c bound x -7.0 7.0    (unconditional range of an arithmetic variable)
    c name 3 stable       (optional human name for a Boolean variable)
    v}

    Expressions use [+ - * / ^] with the usual precedence, parentheses,
    decimal constants, and the function symbols [sqrt exp log sin cos]
    (the operator extension Sec. 2 mentions). Comparators: [< > <= >= =]. *)

val parse_string : string -> (Ab_problem.t, string) result
val parse_file : string -> (Ab_problem.t, string) result
val to_string : Ab_problem.t -> string
val write_file : string -> Ab_problem.t -> unit

val parse_expr :
  Ab_problem.t -> string -> (Absolver_nlp.Expr.t, string) result
(** Parse a single arithmetic expression, interning its variables into the
    problem (exposed for tests and the CLI). *)

val parse_rel :
  Ab_problem.t -> string -> (Absolver_nlp.Expr.rel, string) result
(** Parse ["lhs op rhs"] into the normalized relation [lhs - rhs op 0]. *)
