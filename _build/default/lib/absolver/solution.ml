module Q = Absolver_numeric.Rational
module Expr = Absolver_nlp.Expr
module Types = Absolver_sat.Types

type arith_value = Exact of Q.t | Approx of float

let value_to_float = function Exact q -> Q.to_float q | Approx f -> f

let pp_arith_value fmt = function
  | Exact q -> Q.pp fmt q
  | Approx f -> Format.fprintf fmt "~%.9g" f

type t = {
  bools : bool array;
  arith : arith_value option array;
  certified : bool;
}

let make ~bools ~arith ~certified = { bools; arith; certified }

let arith_env t v =
  if v < 0 || v >= Array.length t.arith then None
  else match t.arith.(v) with Some (Exact q) -> Some q | Some (Approx _) | None -> None

let float_env t ~default v =
  if v < 0 || v >= Array.length t.arith then default
  else match t.arith.(v) with Some av -> value_to_float av | None -> default

let check problem t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* Clauses. *)
  List.iteri
    (fun i clause ->
      let sat =
        List.exists
          (fun l ->
            let v = Types.var_of l in
            v < Array.length t.bools && t.bools.(v) = Types.is_pos l)
          clause
      in
      if not sat then err "clause %d not satisfied" (i + 1))
    (Ab_problem.clauses problem);
  (* Definitions: delta(a) <=> alpha(v_a). *)
  let fenv v = float_env t ~default:0.0 v in
  List.iter
    (fun bv ->
      let ds = Ab_problem.find_defs problem bv in
      let rels = List.map (fun (d : Ab_problem.def) -> d.rel) ds in
      let alpha = t.bools.(bv) in
      let sat =
        if alpha then List.for_all (fun r -> Expr.holds_float ~tol:1e-6 fenv r) rels
        else
          List.exists
            (fun r ->
              List.exists (fun nr -> Expr.holds_float ~tol:1e-6 fenv nr) (Expr.negate_rel r))
            rels
      in
      if not sat then
        err "definition of variable %d violated (alpha = %b)" (bv + 1) alpha;
      List.iter
        (fun (d : Ab_problem.def) ->
          if d.domain = Ab_problem.Dint then
            List.iter
              (fun v ->
                let x = fenv v in
                if Float.abs (x -. Float.round x) > 1e-6 then
                  err "integer variable %s has non-integral value %g"
                    (Ab_problem.arith_var_name problem v)
                    x)
              (Expr.vars d.rel.Expr.expr))
        ds)
    (Ab_problem.defined_vars problem);
  (* Bounds. *)
  List.iter
    (fun (v, (lo, hi)) ->
      let x = fenv v in
      (match lo with
      | Some q when x < Q.to_float q -. 1e-9 ->
        err "lower bound of %s violated" (Ab_problem.arith_var_name problem v)
      | Some _ | None -> ());
      match hi with
      | Some q when x > Q.to_float q +. 1e-9 ->
        err "upper bound of %s violated" (Ab_problem.arith_var_name problem v)
      | Some _ | None -> ())
    (Ab_problem.bounds problem);
  match !errors with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))

let pp problem fmt t =
  Format.fprintf fmt "@[<v>booleans:";
  Array.iteri
    (fun v b -> Format.fprintf fmt " %s%d" (if b then "" else "-") (v + 1))
    t.bools;
  Format.fprintf fmt "@,arithmetic:";
  Array.iteri
    (fun v av ->
      match av with
      | None -> ()
      | Some av ->
        Format.fprintf fmt " %s=%a"
          (Ab_problem.arith_var_name problem v)
          pp_arith_value av)
    t.arith;
  Format.fprintf fmt "@,%s@]"
    (if t.certified then "(certified)" else "(approximate)")
