(** Solutions of AB-problems: a Boolean assignment plus values for the
    arithmetic variables. Linear-only problems yield exact rational
    values; problems with a nonlinear part yield floating witnesses from
    the branch-and-prune solver (IPOPT-style). *)

module Q = Absolver_numeric.Rational

type arith_value = Exact of Q.t | Approx of float

val value_to_float : arith_value -> float
val pp_arith_value : Format.formatter -> arith_value -> unit

type t = {
  bools : bool array; (** indexed by Boolean variable *)
  arith : arith_value option array; (** indexed by arithmetic variable *)
  certified : bool;
      (** [true] when every arithmetic constraint was rigorously certified
          (exact rationals or interval certificates); [false] for
          tolerance-level feasibility. *)
}

val make : bools:bool array -> arith:arith_value option array -> certified:bool -> t

val arith_env : t -> int -> Q.t option
(** Exact view (approximate values are excluded). *)

val float_env : t -> default:float -> int -> float

val check :
  Ab_problem.t -> t -> (unit, string) result
(** Re-verify the solution against the problem: every clause satisfied,
    every definition's delta-equivalence respected (within tolerance for
    approximate values), every bound respected. *)

val pp : Ab_problem.t -> Format.formatter -> t -> unit
