(** Consistency-based diagnosis on AB-problems.

    The paper singles this application out as the reason ABSOLVER supports
    all-solutions Boolean solvers: "the use of LSAT is desirable for
    applications such as consistency-based diagnosis, where more than one
    Boolean solution may be required to reason about the failure state of
    systems" (Sec. 4, citing [2]).

    Encoding convention (Reiter-style, weak fault model): each component
    has a {e health variable} whose [true] value means the component is
    {b abnormal}; the component's behavioural constraint [o] (a defined
    Boolean variable) is linked by a clause [(h \/ o)] — healthy implies
    correct behaviour, abnormal leaves it open. Observations are asserted
    as unit clauses/definitions.

    A {e diagnosis} is a set of components whose abnormality is consistent
    with the observations; reported diagnoses are subset-minimal. *)

module Types = Absolver_sat.Types

type t = {
  abnormal : Types.var list; (** health variables set to abnormal *)
  witness : Solution.t; (** one feasible scenario under this diagnosis *)
}

val diagnoses :
  ?registry:Registry.t ->
  ?options:Engine.options ->
  ?limit:int ->
  health_vars:Types.var list ->
  Ab_problem.t ->
  (t list, string) result
(** All subset-minimal diagnoses, each with a witness scenario. [limit]
    bounds the number of health-variable assignments explored
    (default 4096). *)

val healthy_consistent :
  ?registry:Registry.t -> health_vars:Types.var list -> Ab_problem.t -> bool
(** True iff the all-healthy assignment is consistent with the
    observations (no fault detected). *)
