lib/absolver/registry.ml: Absolver_lp Absolver_nlp Absolver_numeric Absolver_sat
