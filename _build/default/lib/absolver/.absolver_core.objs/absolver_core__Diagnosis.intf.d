lib/absolver/diagnosis.mli: Ab_problem Absolver_sat Engine Registry Solution
