lib/absolver/engine.ml: Ab_problem Absolver_lp Absolver_nlp Absolver_numeric Absolver_sat Array Either Float Format Fun Hashtbl Interval List Option Printf Registry Solution Unix
