lib/absolver/ab_problem.ml: Absolver_circuit Absolver_lp Absolver_nlp Absolver_numeric Absolver_sat Array Format Hashtbl List Option Printf String
