lib/absolver/solution.ml: Ab_problem Absolver_nlp Absolver_numeric Absolver_sat Array Float Format List Printf String
