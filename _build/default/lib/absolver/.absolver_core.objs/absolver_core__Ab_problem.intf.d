lib/absolver/ab_problem.mli: Absolver_circuit Absolver_nlp Absolver_numeric Absolver_sat Format
