lib/absolver/registry.mli: Absolver_lp Absolver_nlp Absolver_numeric Absolver_sat
