lib/absolver/engine.mli: Ab_problem Absolver_lp Absolver_numeric Absolver_sat Format Registry Solution Stdlib
