lib/absolver/dimacs_ext.mli: Ab_problem Absolver_nlp
