lib/absolver/dimacs_ext.ml: Ab_problem Absolver_lp Absolver_nlp Absolver_numeric Absolver_sat Buffer Format List Printf String
