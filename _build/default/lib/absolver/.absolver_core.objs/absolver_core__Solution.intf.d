lib/absolver/solution.mli: Ab_problem Absolver_numeric Format
