lib/absolver/diagnosis.ml: Absolver_sat Array Engine Hashtbl List Solution
