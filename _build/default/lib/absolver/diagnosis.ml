module Types = Absolver_sat.Types

type t = { abnormal : Types.var list; witness : Solution.t }

let abnormal_of health_vars (sol : Solution.t) =
  List.filter (fun h -> sol.Solution.bools.(h)) health_vars

let subset a b = List.for_all (fun x -> List.mem x b) a

let minimize candidates =
  (* Keep subset-minimal abnormal sets; prefer the earliest witness. *)
  List.filter
    (fun d ->
      not
        (List.exists
           (fun d' -> d' != d && subset d'.abnormal d.abnormal
                      && List.length d'.abnormal < List.length d.abnormal)
           candidates))
    candidates

let dedup candidates =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun d ->
      let key = List.sort compare d.abnormal in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    candidates

let diagnoses ?registry ?options ?(limit = 4096) ~health_vars problem =
  let options =
    match options with
    | Some o -> o
    | None ->
      (* Prefer healthy components in the Boolean search so small
         diagnoses surface first. *)
      { Engine.default_options with Engine.default_phase = false }
  in
  (* Enumerate feasible health assignments: projection onto the health
     variables makes the engine block whole fault hypotheses at a time. *)
  match Engine.all_models ~projection:health_vars ?registry ~options ~limit problem with
  | Error e -> Error e
  | Ok (solutions, _) ->
    let candidates =
      List.map
        (fun sol -> { abnormal = abnormal_of health_vars sol; witness = sol })
        solutions
    in
    let minimal =
      minimize (dedup candidates)
      |> List.sort (fun a b ->
           compare
             (List.length a.abnormal, a.abnormal)
             (List.length b.abnormal, b.abnormal))
    in
    Ok minimal

let healthy_consistent ?registry ~health_vars problem =
  match diagnoses ?registry ~limit:64 ~health_vars problem with
  | Ok ds -> List.exists (fun d -> d.abnormal = []) ds
  | Error _ -> false
