lib/lp/linexpr.ml: Absolver_numeric Format Int List Map Option Printf
