lib/lp/conflict.ml: Linexpr List Simplex
