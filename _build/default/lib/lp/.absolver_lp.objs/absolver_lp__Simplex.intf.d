lib/lp/simplex.mli: Absolver_numeric Linexpr
