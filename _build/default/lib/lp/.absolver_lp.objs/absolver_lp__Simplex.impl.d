lib/lp/simplex.ml: Absolver_numeric Array Buffer Fun Hashtbl Int Linexpr List Map Option
