lib/lp/conflict.mli: Linexpr
