lib/lp/linexpr.mli: Absolver_numeric Format
