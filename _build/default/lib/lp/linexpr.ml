module Q = Absolver_numeric.Rational
module IM = Map.Make (Int)

type var = int
type t = { terms : Q.t IM.t; const : Q.t }

let zero = { terms = IM.empty; const = Q.zero }
let constant c = { terms = IM.empty; const = c }

let normalize_terms terms = IM.filter (fun _ q -> not (Q.is_zero q)) terms

let var ?(coeff = Q.one) v =
  if Q.is_zero coeff then zero else { terms = IM.singleton v coeff; const = Q.zero }

let of_list pairs const =
  let terms =
    List.fold_left
      (fun acc (q, v) ->
        let cur = Option.value ~default:Q.zero (IM.find_opt v acc) in
        IM.add v (Q.add cur q) acc)
      IM.empty pairs
  in
  { terms = normalize_terms terms; const }

let coeff t v = Option.value ~default:Q.zero (IM.find_opt v t.terms)
let const t = t.const
let coeffs t = IM.bindings t.terms
let is_constant t = IM.is_empty t.terms
let vars t = List.map fst (coeffs t)

let add a b =
  let terms =
    IM.union (fun _ x y -> let s = Q.add x y in if Q.is_zero s then None else Some s)
      a.terms b.terms
  in
  { terms; const = Q.add a.const b.const }

let scale q t =
  if Q.is_zero q then zero
  else { terms = IM.map (Q.mul q) t.terms; const = Q.mul q t.const }

let neg t = scale Q.minus_one t
let sub a b = add a (neg b)
let add_term t q v = add t (var ~coeff:q v)
let set_const t c = { t with const = c }
let drop_const t = { t with const = Q.zero }

let eval env t =
  IM.fold (fun v q acc -> Q.add acc (Q.mul q (env v))) t.terms t.const

let compare a b =
  let c = Q.compare a.const b.const in
  if c <> 0 then c else IM.compare Q.compare a.terms b.terms

let equal a b = compare a b = 0

let pp ?(name = fun v -> Printf.sprintf "x%d" v) () fmt t =
  let first = ref true in
  IM.iter
    (fun v q ->
      if !first then begin
        Format.fprintf fmt "%a*%s" Q.pp q (name v);
        first := false
      end
      else if Q.sign q >= 0 then Format.fprintf fmt " + %a*%s" Q.pp q (name v)
      else Format.fprintf fmt " - %a*%s" Q.pp (Q.neg q) (name v))
    t.terms;
  if !first then Q.pp fmt t.const
  else if not (Q.is_zero t.const) then
    if Q.sign t.const > 0 then Format.fprintf fmt " + %a" Q.pp t.const
    else Format.fprintf fmt " - %a" Q.pp (Q.neg t.const)

type op = Le | Lt | Ge | Gt | Eq

let pp_op fmt op =
  Format.pp_print_string fmt
    (match op with Le -> "<=" | Lt -> "<" | Ge -> ">=" | Gt -> ">" | Eq -> "=")

let negate_op = function
  | Le -> Gt
  | Lt -> Ge
  | Ge -> Lt
  | Gt -> Le
  | Eq -> invalid_arg "Linexpr.negate_op: Eq splits into Lt/Gt"

type cons = { expr : t; op : op; tag : int }

let pp_cons ?name () fmt c =
  Format.fprintf fmt "%a %a 0" (pp ?name ()) c.expr pp_op c.op

let holds env c =
  let v = eval env c.expr in
  match c.op with
  | Le -> Q.leq v Q.zero
  | Lt -> Q.lt v Q.zero
  | Ge -> Q.geq v Q.zero
  | Gt -> Q.gt v Q.zero
  | Eq -> Q.is_zero v
