(** Sparse linear expressions [sum a_i * x_i + c] over exact rationals.

    Variables are dense non-negative integers managed by the caller. *)

module Q = Absolver_numeric.Rational

type var = int
type t

val zero : t
val constant : Q.t -> t
val var : ?coeff:Q.t -> var -> t
val of_list : (Q.t * var) list -> Q.t -> t

val coeff : t -> var -> Q.t
val const : t -> Q.t
val coeffs : t -> (var * Q.t) list
(** Non-zero coefficients in increasing variable order. *)

val is_constant : t -> bool
val vars : t -> var list

val add : t -> t -> t
val sub : t -> t -> t
val scale : Q.t -> t -> t
val neg : t -> t
val add_term : t -> Q.t -> var -> t
val set_const : t -> Q.t -> t
val drop_const : t -> t

val eval : (var -> Q.t) -> t -> Q.t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : ?name:(var -> string) -> unit -> Format.formatter -> t -> unit

(** Comparison operators of linear constraints. *)
type op = Le | Lt | Ge | Gt | Eq

val pp_op : Format.formatter -> op -> unit
val negate_op : op -> op
(** Logical negation: [Le -> Gt], [Eq] has no single negation and raises.
    @raise Invalid_argument on [Eq]. *)

(** A linear constraint [expr op 0] with an integer tag identifying its
    origin (e.g. the index of the arithmetic definition in an AB-problem). *)
type cons = { expr : t; op : op; tag : int }

val pp_cons : ?name:(var -> string) -> unit -> Format.formatter -> cons -> unit
val holds : (var -> Q.t) -> cons -> bool
