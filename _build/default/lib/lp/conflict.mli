(** Minimization of infeasible constraint sets.

    The paper's control loop feeds "the smallest conflicting subset" of an
    infeasible linear system back to the SAT solver as a hint (Sec. 4).
    The simplex explanation is already irredundant in most cases; this
    module applies deletion filtering on top to guarantee a minimal
    (irreducible) infeasible subsystem, and is the subject of one of the
    ablation benchmarks. *)

val is_infeasible : Linexpr.cons list -> bool

val minimize : Linexpr.cons list -> Linexpr.cons list
(** [minimize cs] returns a minimal infeasible subset of [cs].
    @raise Invalid_argument if [cs] is feasible. *)

val minimal_core : Linexpr.cons list -> int list -> int list
(** [minimal_core all tags] minimizes the sub-system of [all] selected by
    [tags] (each constraint's [tag] field), returning the surviving tags.
    Constraints whose tags are not in [tags] are ignored entirely. *)
